package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
	"dsteiner/internal/tables"
)

// Fig9 reproduces the Steiner-tree visualizations of Fig. 9: trees in the
// MiCo graph for |S| = 10, 100, 1000, emitted as Graphviz DOT files (seed
// vertices red, Steiner vertices blue, like the paper's rendering) plus a
// summary table.
func Fig9(cfg Config) ([]tables.Table, error) {
	name := "MCO"
	g := cfg.Graph(name)
	t := tables.Table{
		Title:  "Fig. 9: Steiner trees in the MiCo graph",
		Header: []string{"|S|", "Tree vertices", "Steiner vertices", "|E_S|", "D(G_S)", "DOT file"},
	}
	for _, k := range cfg.SeedCounts(name) {
		if k > 1000 {
			continue
		}
		cfg.logf("fig9: |S|=%d", k)
		seedSet := cfg.Seeds(name, k)
		res, err := core.Solve(g, seedSet, core.Default(cfg.Ranks))
		if err != nil {
			return nil, err
		}
		file := "-"
		if cfg.OutDir != "" {
			if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
				return nil, err
			}
			file = filepath.Join(cfg.OutDir, fmt.Sprintf("mico_s%d.dot", k))
			f, err := os.Create(file)
			if err != nil {
				return nil, err
			}
			WriteDOT(f, res.Tree, seedSet)
			if err := f.Close(); err != nil {
				return nil, err
			}
		}
		t.AddRow(itoa(k),
			itoa(len(seedSet)+res.SteinerVertices),
			itoa(res.SteinerVertices),
			itoa(len(res.Tree)),
			tables.Count(int64(res.TotalDistance)),
			file)
	}
	t.AddNote("DOT renders seeds red and Steiner vertices blue, matching the paper's figure")
	return []tables.Table{t}, nil
}

// WriteDOT emits a Graphviz rendering of a Steiner tree: seed vertices
// filled red, Steiner vertices filled blue, edges labelled with weights.
func WriteDOT(w interface{ Write([]byte) (int, error) }, tree []graph.Edge, seedSet []graph.VID) {
	isSeed := map[graph.VID]bool{}
	for _, s := range seedSet {
		isSeed[s] = true
	}
	verts := map[graph.VID]bool{}
	for _, e := range tree {
		verts[e.U] = true
		verts[e.V] = true
	}
	fmt.Fprintln(w, "graph steiner {")
	fmt.Fprintln(w, "  node [style=filled, fontcolor=white];")
	for v := range verts {
		color := "blue"
		if isSeed[v] {
			color = "red"
		}
		fmt.Fprintf(w, "  %d [fillcolor=%s];\n", v, color)
	}
	for _, e := range tree {
		fmt.Fprintf(w, "  %d -- %d [label=%d];\n", e.U, e.V, e.W)
	}
	fmt.Fprintln(w, "}")
}
