package experiments

import (
	"strconv"
	"time"

	"dsteiner/internal/sssp"
	"dsteiner/internal/tables"
)

// Table1 reproduces Table I: single-threaded runtime of all-pair-shortest-
// path among seeds (the KMB Step 1 kernel) versus Voronoi-cell computation
// (Mehlhorn's replacement), on LVJ and PTN with |S| = 10/100/1000. The
// paper's shape: VC is cheaper everywhere and the gap widens by orders of
// magnitude as |S| grows, because APSP runs |S| sweeps while VC runs one.
func Table1(cfg Config) ([]tables.Table, error) {
	t := tables.Table{
		Title:  "Table I: APSP vs Voronoi cell (VC) computation, single thread",
		Header: []string{"Graph", "|S|", "APSP", "VC", "APSP/VC"},
	}
	for _, name := range []string{"LVJ", "PTN"} {
		g := cfg.Graph(name)
		for _, k := range cfg.SeedCounts(name) {
			if k > 1000 {
				continue // the paper stops at 1000
			}
			seedSet := cfg.Seeds(name, k)
			cfg.logf("table1: %s |S|=%d", name, k)
			t0 := time.Now()
			sssp.APSPAmongSeeds(g, seedSet)
			apsp := time.Since(t0).Seconds()
			t0 = time.Now()
			sssp.MultiSource(g, seedSet)
			vc := time.Since(t0).Seconds()
			speedup := "-"
			if vc > 0 {
				speedup = tables.Ratio(apsp / vc)
			}
			t.AddRow(name, itoa(k), tables.Seconds(apsp), tables.Seconds(vc), speedup)
		}
	}
	t.AddNote("paper (full-scale LVJ, |S|=1000): APSP 5813.3s vs VC 104.5s (55.6x)")
	return []tables.Table{t}, nil
}

func itoa(n int) string { return strconv.Itoa(n) }
