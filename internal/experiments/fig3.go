package experiments

import (
	"fmt"

	"dsteiner/internal/core"
	"dsteiner/internal/tables"
)

// fig3Datasets are the four largest graphs, as in the paper.
var fig3Datasets = []string{"WDC12", "CLW12", "UKW07", "FRS"}

// fig3Ranks is the strong-scaling platform sweep. The paper doubles compute
// nodes three times per dataset (e.g. 32/64/128); we sweep simulated ranks.
var fig3Ranks = []int{1, 2, 4, 8}

// Fig3 reproduces the strong-scaling experiment: per-phase runtime at
// doubling rank counts for the four largest graphs at |S| = 100 and 1000.
// Wall-clock speedup on one box is bounded by physical cores, so the table
// also reports the critical-path work metric (max per-rank messages
// processed, reduced over vertex-centric phases): its drop with P is the
// machine-independent scaling shape (see DESIGN.md §1). The paper's shape:
// Voronoi-cell dominates everywhere, local min-dist edge scales almost
// linearly, the last four phases are negligible.
func Fig3(cfg Config) ([]tables.Table, error) {
	var out []tables.Table
	for _, name := range fig3Datasets {
		for _, k := range []int{100, 1000} {
			if !contains(cfg.SeedCounts(name), k) {
				continue
			}
			seedSet := cfg.Seeds(name, k)
			g := cfg.Graph(name)
			t := tables.Table{
				Title: fmt.Sprintf("Fig. 3: strong scaling, %s |S|=%d", name, k),
				Header: append([]string{"Ranks"},
					append(phaseShortNames(), "Total", "CP-work", "CP-speedup")...),
			}
			var baseWork int64
			for _, p := range fig3Ranks {
				cfg.logf("fig3: %s |S|=%d P=%d", name, k, p)
				res, err := core.Solve(g, seedSet, core.Default(p))
				if err != nil {
					return nil, err
				}
				cpWork := criticalPathWork(res)
				if baseWork == 0 {
					baseWork = cpWork
				}
				row := []string{itoa(p)}
				for _, ph := range res.Phases {
					row = append(row, tables.Seconds(ph.Seconds))
				}
				row = append(row,
					tables.Seconds(res.TotalSeconds()),
					tables.Count(cpWork),
					tables.Ratio(float64(baseWork)/float64(cpWork)))
				t.AddRow(row...)
			}
			t.AddNote("CP-work = sum over vertex-centric phases of max-per-rank messages processed")
			t.AddNote("paper: up to 90%% efficient scaling on CLW/WDC; Voronoi cell dominates")
			out = append(out, t)
		}
	}
	return out, nil
}

// criticalPathWork sums the per-phase max-rank work: a lower bound on any
// rank's processing on the critical path.
func criticalPathWork(res *core.Result) int64 {
	var sum int64
	for _, p := range res.Phases {
		sum += p.MaxRankWork
	}
	if sum == 0 {
		return 1
	}
	return sum
}

// phaseShortNames abbreviates the six phase names for table headers.
func phaseShortNames() []string {
	return []string{"Voronoi", "LocMinE", "GlbMinE", "MST", "Prune", "TreeE"}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
