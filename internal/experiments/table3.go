package experiments

import (
	"fmt"

	"dsteiner/internal/gen"
	"dsteiner/internal/tables"
)

// Table3 reproduces Table III: characteristics of the graph datasets — here
// the synthetic stand-ins, with the paper's reported full-scale numbers
// alongside for comparison. Run this first to sanity-check that the
// stand-ins preserve the relative size ordering and weight ranges.
func Table3(cfg Config) ([]tables.Table, error) {
	t := tables.Table{
		Title: "Table III: dataset characteristics (stand-ins vs paper)",
		Header: []string{"Graph", "|V|", "2|E|", "MaxDeg", "AvgDeg",
			"Weights", "Bytes", "Paper |V|", "Paper 2|E|"},
	}
	for _, name := range gen.DatasetNames() {
		info := gen.MustDataset(name)
		g := cfg.Graph(name)
		cfg.logf("table3: %s built", name)
		minW, maxW := g.WeightRange()
		t.AddRow(
			name,
			tables.Count(int64(g.NumVertices())),
			tables.Count(g.NumArcs()),
			tables.Count(int64(g.MaxDegree())),
			fmt.Sprintf("%.1f", g.AvgDegree()),
			fmt.Sprintf("[%d, %s]", minW, tables.Count(int64(maxW))),
			tables.Bytes(g.MemoryBytes()),
			info.Paper.Vertices,
			info.Paper.Arcs,
		)
	}
	t.AddNote("stand-ins are deterministic synthetic graphs (internal/gen); see DESIGN.md §1")
	return []tables.Table{t}, nil
}
