package experiments

import (
	"fmt"
	"time"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
	"dsteiner/internal/mst"
	"dsteiner/internal/tables"
)

// AblationBSP quantifies the paper's asynchronous-processing design choice
// (§IV, citing [24] and [27]): the same solver run bulk-synchronously. The
// expected shape: async converges in less wall time and fewer messages
// because fresher distance labels suppress redundant relaxations between
// supersteps.
func AblationBSP(cfg Config) ([]tables.Table, error) {
	t := tables.Table{
		Title:  fmt.Sprintf("Ablation: asynchronous vs bulk-synchronous processing (P=%d)", cfg.Ranks),
		Header: []string{"Graph", "|S|", "Mode", "Voronoi", "Total", "Messages"},
	}
	for _, name := range []string{"LVJ", "FRS"} {
		k := 100
		if !contains(cfg.SeedCounts(name), k) {
			continue
		}
		g := cfg.Graph(name)
		seedSet := cfg.Seeds(name, k)
		for _, bsp := range []bool{false, true} {
			mode := "async"
			if bsp {
				mode = "bsp"
			}
			cfg.logf("ablation-bsp: %s mode=%s", name, mode)
			opts := core.Default(cfg.Ranks)
			opts.BSP = bsp
			res, err := core.Solve(g, seedSet, opts)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, itoa(k), mode,
				tables.Seconds(res.Phase(core.PhaseVoronoi).Seconds),
				tables.Seconds(res.TotalSeconds()),
				tables.Count(res.TotalMessages()))
		}
	}
	t.AddNote("paper's premise (from [24],[27]): async beats BSP for distributed shortest paths")
	return []tables.Table{t}, nil
}

// AblationDelegates quantifies the load-balance levers for skewed graphs:
// partitioning (equal vertices vs equal arcs vs hashed) crossed with
// HavoqGT-style high-degree vertex delegation. The metric is the Voronoi
// phase's critical-path work (max per-rank messages processed) — on
// scale-free graphs, equal-vertex contiguous ranges leave the hub-heavy
// range with most of the arcs, which is exactly what HavoqGT's vertex
// delegates exist to fix.
func AblationDelegates(cfg Config) ([]tables.Table, error) {
	t := tables.Table{
		Title:  fmt.Sprintf("Ablation: partitioning x vertex delegates (P=%d)", cfg.Ranks),
		Header: []string{"Graph", "Partition", "Threshold", "Delegates", "CP-work", "CP-eff", "Voronoi time", "Messages"},
	}
	name := "WDC12"
	g := cfg.Graph(name)
	k := 100
	if !contains(cfg.SeedCounts(name), k) {
		ks := cfg.SeedCounts(name)
		k = ks[len(ks)-1]
	}
	seedSet := cfg.Seeds(name, k)
	maxDeg := g.MaxDegree()
	var baseWork int64
	for _, pk := range []core.PartitionKind{core.PartitionBlock, core.PartitionHash, core.PartitionArcBlock} {
		for _, threshold := range []int{0, maxDeg / 16} {
			cfg.logf("ablation-delegates: partition=%v threshold=%d", pk, threshold)
			opts := core.Default(cfg.Ranks)
			opts.Partition = pk
			opts.DelegateThreshold = threshold
			res, err := core.Solve(g, seedSet, opts)
			if err != nil {
				return nil, err
			}
			count := 0
			if threshold > 0 {
				for v := 0; v < g.NumVertices(); v++ {
					if g.Degree(graph.VID(v)) >= threshold {
						count++
					}
				}
			}
			vor := res.Phase(core.PhaseVoronoi)
			if baseWork == 0 {
				baseWork = vor.MaxRankWork * int64(cfg.Ranks)
			}
			eff := float64(baseWork) / float64(vor.MaxRankWork) / float64(cfg.Ranks)
			t.AddRow(name, pk.String(), itoa(threshold), itoa(count),
				tables.Count(vor.MaxRankWork),
				fmt.Sprintf("%.0f%%", 100*eff),
				tables.Seconds(vor.Seconds),
				tables.Count(vor.Sent))
		}
	}
	t.AddNote("CP-eff = balance relative to the first configuration's total work; threshold 0 disables delegation")
	t.AddNote("arc-balanced ranges reproduce HavoqGT's edge load-balancing role (DESIGN.md §1)")
	return []tables.Table{t}, nil
}

// AblationMST quantifies the paper's "sequential MST is sufficient" design
// choice (§III, citing Bader & Cong [18]): time to compute the MST of a
// distance graph G'₁ of growing size with sequential Prim, Kruskal and the
// parallel-style Borůvka. The paper measures ~2s for |S|=10K with
// sequential Prim, negligible against total runtime.
func AblationMST(cfg Config) ([]tables.Table, error) {
	t := tables.Table{
		Title:  "Ablation: MST algorithm on the distance graph G'1",
		Header: []string{"|S|", "|E'1|", "Prim", "Kruskal", "Boruvka", "Boruvka rounds"},
	}
	name := "LVJ"
	g := cfg.Graph(name)
	for _, k := range cfg.SeedCounts(name) {
		seedSet := cfg.Seeds(name, k)
		// Build G'1 once via a 1-rank solve, then time MSTs directly on
		// synthetic distance graphs of the measured size.
		res, err := core.Solve(g, seedSet, core.Default(1))
		if err != nil {
			return nil, err
		}
		edges := makeDistanceGraph(len(seedSet), res.DistGraphEdges)
		t0 := time.Now()
		prim := mst.Prim(len(seedSet), edges)
		primT := time.Since(t0).Seconds()
		t0 = time.Now()
		kru := mst.Kruskal(len(seedSet), edges)
		kruT := time.Since(t0).Seconds()
		t0 = time.Now()
		bor, rounds := mst.Boruvka(len(seedSet), edges)
		borT := time.Since(t0).Seconds()
		if prim.Total != kru.Total || kru.Total != bor.Total {
			return nil, fmt.Errorf("ablation-mst: MST totals disagree")
		}
		t.AddRow(itoa(k), itoa(res.DistGraphEdges),
			tables.Seconds(primT), tables.Seconds(kruT), tables.Seconds(borT),
			itoa(rounds))
	}
	t.AddNote("paper: sequential Prim on the |S|=10K distance graph takes ~2s, negligible overall")
	return []tables.Table{t}, nil
}

// makeDistanceGraph builds a deterministic connected weighted graph with
// the given vertex and edge count, standing in for G'1 in MST timing.
func makeDistanceGraph(n, m int) []mst.WEdge {
	if n < 2 {
		return nil
	}
	edges := make([]mst.WEdge, 0, m)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for v := 1; v < n; v++ {
		edges = append(edges, mst.WEdge{U: int32(next() % uint64(v)), V: int32(v), W: graph.Dist(next()%100000 + 1)})
	}
	for len(edges) < m {
		u := int32(next() % uint64(n))
		v := int32(next() % uint64(n))
		if u != v {
			edges = append(edges, mst.WEdge{U: u, V: v, W: graph.Dist(next()%100000 + 1)})
		}
	}
	return edges
}
