package experiments

import (
	"fmt"
	"math"

	"dsteiner/internal/core"
	"dsteiner/internal/gen"
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/seeds"
	"dsteiner/internal/tables"
)

// fig7Ranges are the edge-weight ranges of Fig. 7 (upper bounds, inclusive).
var fig7Ranges = []uint32{100, 500, 1000, 5000, 10000, 50000, 100000}

// Fig7 reproduces the edge-weight-distribution sensitivity study: LVJ
// topology with weights redrawn uniformly from [1, W] for growing W,
// solved with FIFO and priority queues at |S|=1000. The paper's shape:
// FIFO runtime is highly sensitive to the weight range (std-dev 13.5s,
// 14.7x the priority queue's 0.91s); the priority queue is both faster
// (10.8x mean) and nearly flat.
func Fig7(cfg Config) ([]tables.Table, error) {
	info := gen.MustDataset("LVJ")
	base := info.Config
	if cfg.Scale > 0 && cfg.Scale < 1 {
		base = info.Scaled(cfg.Scale)
	}
	k := 1000
	if cfg.SeedCap < k {
		k = cfg.SeedCap
	}
	t := tables.Table{
		Title:  fmt.Sprintf("Fig. 7: edge weight range vs runtime, LVJ |S|=%d (P=%d, %d reps)", k, cfg.Ranks, cfg.Reps),
		Header: []string{"Weights", "FIFO", "Priority", "FIFO/Priority"},
	}
	means := map[rt.QueueKind][]float64{}
	for _, maxW := range fig7Ranges {
		c := base
		c.MaxWeight = maxW
		c.Name = fmt.Sprintf("LVJ-w%d", maxW)
		g := c.MustBuild()
		comp := len(graph.LargestComponentVertices(g))
		kk := k
		if kk > comp/4 {
			kk = comp / 4
		}
		seedSet := seeds.MustSelect(g, kk, seeds.BFSLevel, cfg.SeedSelection)
		row := []string{fmt.Sprintf("[1, %s]", tables.Count(int64(maxW)))}
		var perQueue []float64
		for _, q := range []rt.QueueKind{rt.QueueFIFO, rt.QueuePriority} {
			cfg.logf("fig7: maxW=%d queue=%v", maxW, q)
			var total float64
			for rep := 0; rep < cfg.Reps; rep++ {
				opts := core.Default(cfg.Ranks)
				opts.Queue = q
				res, err := core.Solve(g, seedSet, opts)
				if err != nil {
					return nil, err
				}
				total += res.TotalSeconds()
			}
			mean := total / float64(cfg.Reps)
			means[q] = append(means[q], mean)
			perQueue = append(perQueue, mean)
			row = append(row, tables.Seconds(mean))
		}
		row = append(row, fmt.Sprintf("%.2fx", perQueue[0]/perQueue[1]))
		t.AddRow(row...)
	}
	fifoSD, prioSD := stddev(means[rt.QueueFIFO]), stddev(means[rt.QueuePriority])
	t.AddNote("std-dev across ranges: FIFO %s, priority %s (paper: 13.5s vs 0.91s, 14.7x)",
		tables.Seconds(fifoSD), tables.Seconds(prioSD))
	t.AddNote("paper: priority queue on average 10.8x faster on LVJ and far less range-sensitive")
	return []tables.Table{t}, nil
}

func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss / float64(len(xs)))
}
