// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the scaled-down stand-in datasets. Each runner returns
// renderable tables with the same rows/series the paper reports; DESIGN.md
// §4 maps experiment IDs to paper artifacts and EXPERIMENTS.md records
// paper-vs-measured outcomes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"dsteiner/internal/gen"
	"dsteiner/internal/graph"
	"dsteiner/internal/seeds"
	"dsteiner/internal/tables"
)

// Config controls experiment scale and cost knobs. DefaultConfig mirrors
// the paper's sweeps at stand-in scale; ShortConfig shrinks everything for
// quick test runs.
type Config struct {
	// Scale multiplies dataset vertex counts (1.0 = full stand-ins).
	Scale float64
	// Ranks is the rank count for fixed-P experiments (Fig. 4 etc.).
	Ranks int
	// SeedCap bounds the largest seed count; the paper's "10K" column is
	// min(10000, SeedCap, component/4) per dataset.
	SeedCap int
	// RunExact enables the Dreyfus–Wagner exact columns (Table VI/VII at
	// |S|=10); when false, the refined reference substitutes everywhere.
	RunExact bool
	// RefineBudget limits reference refinement per instance.
	RefineBudget time.Duration
	// Reps repeats timing-sensitive runs (Fig. 7 variability stats).
	Reps int
	// OutDir, when set, receives Fig. 9 DOT files.
	OutDir string
	// Log receives progress lines (nil = silent).
	Log io.Writer
	// SeedSelection is the RNG seed for seed-vertex selection.
	SeedSelection int64
}

// DefaultConfig runs the full stand-in scale sweeps.
func DefaultConfig() Config {
	return Config{
		Scale:         1.0,
		Ranks:         4,
		SeedCap:       10000,
		RunExact:      true,
		RefineBudget:  10 * time.Second,
		Reps:          3,
		SeedSelection: 42,
	}
}

// ShortConfig shrinks datasets and sweeps for fast CI-style runs.
func ShortConfig() Config {
	return Config{
		Scale:         0.125,
		Ranks:         2,
		SeedCap:       300,
		RunExact:      false,
		RefineBudget:  time.Second,
		Reps:          1,
		SeedSelection: 42,
	}
}

func (cfg Config) logf(format string, args ...any) {
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, format+"\n", args...)
	}
}

// Runner produces one experiment's tables.
type Runner func(cfg Config) ([]tables.Table, error)

// Registry maps experiment IDs (paper artifact names) to runners. Fig. 5
// and Fig. 6 share one runner (same runs report runtime and messages);
// Table VI and Table VII likewise.
var Registry = map[string]Runner{
	"table1":             Table1,
	"table3":             Table3,
	"fig3":               Fig3,
	"fig4":               Fig4,
	"table4":             Table4,
	"fig5":               Fig56,
	"fig6":               Fig56,
	"fig7":               Fig7,
	"fig8":               Fig8,
	"table5":             Table5,
	"table6":             Table67,
	"table7":             Table67,
	"fig9":               Fig9,
	"ablation-bsp":       AblationBSP,
	"ablation-delegates": AblationDelegates,
	"ablation-mst":       AblationMST,
}

// Names returns registry keys in presentation order.
func Names() []string {
	order := []string{
		"table1", "table3", "fig3", "fig4", "table4", "fig5", "fig6",
		"fig7", "fig8", "table5", "table6", "table7", "fig9",
		"ablation-bsp", "ablation-delegates", "ablation-mst",
	}
	out := make([]string, 0, len(order))
	seen := map[string]bool{}
	for _, n := range order {
		if _, ok := Registry[n]; ok && !seen[n] {
			out = append(out, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range Registry {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) ([]tables.Table, error) {
	r, ok := Registry[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(Names(), ", "))
	}
	return r(cfg)
}

// Render writes tables to w.
func Render(w io.Writer, ts []tables.Table) {
	for i := range ts {
		ts[i].Render(w)
	}
}

// --- dataset cache -------------------------------------------------------

type cacheKey struct {
	name  string
	scale float64
}

var (
	graphCache sync.Map // cacheKey -> *graph.Graph
	compCache  sync.Map // cacheKey -> int (largest component size)
)

// Graph returns the (cached) stand-in graph for a Table III dataset at the
// configured scale.
func (cfg Config) Graph(name string) *graph.Graph {
	key := cacheKey{name: name, scale: cfg.Scale}
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	info := gen.MustDataset(name)
	c := info.Config
	if cfg.Scale > 0 && cfg.Scale < 1 {
		c = info.Scaled(cfg.Scale)
	}
	g := c.MustBuild()
	actual, _ := graphCache.LoadOrStore(key, g)
	return actual.(*graph.Graph)
}

// componentSize returns the size of the largest connected component.
func (cfg Config) componentSize(name string) int {
	key := cacheKey{name: name, scale: cfg.Scale}
	if n, ok := compCache.Load(key); ok {
		return n.(int)
	}
	n := len(graph.LargestComponentVertices(cfg.Graph(name)))
	compCache.Store(key, n)
	return n
}

// SeedCounts returns the paper's |S| sweep {10, 100, 1000, 10000} clipped
// to the dataset: counts above min(SeedCap, component/4) are dropped
// (the paper likewise reports N/A for 10K seeds on MiCo and CiteSeer).
func (cfg Config) SeedCounts(name string) []int {
	limit := cfg.componentSize(name) / 4
	if cfg.SeedCap < limit {
		limit = cfg.SeedCap
	}
	var out []int
	for _, k := range []int{10, 100, 1000, 10000} {
		if k <= limit {
			out = append(out, k)
		}
	}
	if len(out) == 0 && limit >= 2 {
		out = []int{limit}
	}
	return out
}

// Seeds picks |S|=k seed vertices with the paper's default BFS-level
// strategy, deterministically per (dataset, k).
func (cfg Config) Seeds(name string, k int) []graph.VID {
	return seeds.MustSelect(cfg.Graph(name), k, seeds.BFSLevel, cfg.SeedSelection+int64(k))
}
