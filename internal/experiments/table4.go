package experiments

import (
	"dsteiner/internal/core"
	"dsteiner/internal/gen"
	"dsteiner/internal/tables"
)

// Table4 reproduces Table IV: the number of edges |E_S| in the output
// Steiner tree for every dataset and seed-count combination. The paper's
// shape: |E_S| grows sub-linearly in |S| (roughly 10x per 100x seeds at the
// low end, compressing at 10K) and is orders of magnitude smaller than |E|.
func Table4(cfg Config) ([]tables.Table, error) {
	names := gen.DatasetNames()
	t := tables.Table{
		Title:  "Table IV: Steiner tree edge count |E_S|",
		Header: append([]string{"|S|"}, names...),
	}
	for _, k := range []int{10, 100, 1000, 10000} {
		row := []string{itoa(k)}
		any := false
		for _, name := range names {
			if !contains(cfg.SeedCounts(name), k) {
				row = append(row, "N/A")
				continue
			}
			cfg.logf("table4: %s |S|=%d", name, k)
			res, err := core.Solve(cfg.Graph(name), cfg.Seeds(name, k), core.Default(cfg.Ranks))
			if err != nil {
				return nil, err
			}
			row = append(row, itoa(len(res.Tree)))
			any = true
		}
		if any {
			t.AddRow(row...)
		}
	}
	t.AddNote("paper reports N/A for 10K seeds on MCO and CTS; same rule applies per component size")
	return []tables.Table{t}, nil
}
