package sssp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
)

// lineGraph returns 0-1-2-...-n-1 with weight w.
func lineGraph(n int, w uint32) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.VID(i), graph.VID(i+1), w)
	}
	g, _ := b.Build()
	return g
}

func randomConnected(rng *rand.Rand, n int, maxW uint32) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(int(maxW)))+1)
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(graph.VID(u), graph.VID(v), uint32(rng.Intn(int(maxW)))+1)
	}
	g, _ := b.Build()
	return g
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(6, 3)
	r := Dijkstra(g, 0)
	for v := 0; v < 6; v++ {
		if r.Dist[v] != graph.Dist(3*v) {
			t.Errorf("Dist[%d] = %d, want %d", v, r.Dist[v], 3*v)
		}
		if r.Src[v] != 0 {
			t.Errorf("Src[%d] = %d, want 0", v, r.Src[v])
		}
	}
	if r.Pred[0] != graph.NilVID || r.Pred[3] != 2 {
		t.Errorf("preds wrong: %v", r.Pred)
	}
}

func TestDijkstraPicksCheaperLongerPath(t *testing.T) {
	// 0-1 weight 10; 0-2-1 weights 3+3=6.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 10)
	b.AddEdge(0, 2, 3)
	b.AddEdge(2, 1, 3)
	g, _ := b.Build()
	r := Dijkstra(g, 0)
	if r.Dist[1] != 6 {
		t.Fatalf("Dist[1] = %d, want 6", r.Dist[1])
	}
	if r.Pred[1] != 2 {
		t.Fatalf("Pred[1] = %d, want 2", r.Pred[1])
	}
}

func TestUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, _ := b.Build()
	r := Dijkstra(g, 0)
	if r.Dist[2] != graph.InfDist || r.Src[2] != graph.NilVID {
		t.Fatalf("unreachable vertex has Dist=%d Src=%d", r.Dist[2], r.Src[2])
	}
	if p := r.PathTo(g, 2); p != nil {
		t.Fatalf("PathTo(unreachable) = %v", p)
	}
}

func TestMultiSourceVoronoiCells(t *testing.T) {
	// Line 0..9 with unit weights; sources 0 and 9. Midpoint 4/5 split:
	// vertices 0..4 belong to 0 (vertex 4 at distance 4 from both sides
	// ties toward the smaller seed ID 0... distance to 0 is 4, to 9 is 5
	// so no tie; vertex 4 -> cell 0; vertex 5: distance 5 vs 4 -> cell 9).
	g := lineGraph(10, 1)
	r := MultiSource(g, []graph.VID{0, 9})
	for v := 0; v <= 4; v++ {
		if r.Src[v] != 0 {
			t.Errorf("Src[%d] = %d, want 0", v, r.Src[v])
		}
	}
	for v := 5; v <= 9; v++ {
		if r.Src[v] != 9 {
			t.Errorf("Src[%d] = %d, want 9", v, r.Src[v])
		}
	}
	if r.Dist[4] != 4 || r.Dist[5] != 4 {
		t.Errorf("midpoint distances: %d, %d", r.Dist[4], r.Dist[5])
	}
}

func TestMultiSourceTieBreaksTowardSmallerSeed(t *testing.T) {
	// Even-length line: vertex 2 is equidistant (2) from seeds 0 and 4.
	g := lineGraph(5, 1)
	r := MultiSource(g, []graph.VID{4, 0}) // order must not matter
	if r.Src[2] != 0 {
		t.Fatalf("tie broken to %d, want smaller seed 0", r.Src[2])
	}
}

func TestMultiSourceDuplicateSeeds(t *testing.T) {
	g := lineGraph(4, 1)
	r := MultiSource(g, []graph.VID{1, 1, 1})
	if r.Dist[3] != 2 || r.Src[3] != 1 {
		t.Fatalf("duplicate seeds broke search: %v %v", r.Dist, r.Src)
	}
}

func TestPathTo(t *testing.T) {
	g := lineGraph(5, 2)
	r := Dijkstra(g, 0)
	path := r.PathTo(g, 4)
	if len(path) != 4 {
		t.Fatalf("path len = %d, want 4", len(path))
	}
	var total graph.Dist
	for _, e := range path {
		total += graph.Dist(e.W)
	}
	if total != r.Dist[4] {
		t.Fatalf("path weight %d != dist %d", total, r.Dist[4])
	}
	if p := r.PathTo(g, 0); len(p) != 0 {
		t.Fatalf("PathTo(source) = %v, want empty", p)
	}
}

func TestAllKernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(rng, 200, 50)
	seeds := []graph.VID{3, 77, 150}
	d := MultiSource(g, seeds)
	bf := BellmanFord(g, seeds)
	ds1 := DeltaStepping(g, seeds, 1)
	ds16 := DeltaStepping(g, seeds, 16)
	for v := 0; v < g.NumVertices(); v++ {
		if bf.Dist[v] != d.Dist[v] || ds1.Dist[v] != d.Dist[v] || ds16.Dist[v] != d.Dist[v] {
			t.Fatalf("distance mismatch at %d: dij=%d bf=%d ds1=%d ds16=%d",
				v, d.Dist[v], bf.Dist[v], ds1.Dist[v], ds16.Dist[v])
		}
		if bf.Src[v] != d.Src[v] || ds1.Src[v] != d.Src[v] || ds16.Src[v] != d.Src[v] {
			t.Fatalf("cell mismatch at %d: dij=%d bf=%d ds1=%d ds16=%d",
				v, d.Src[v], bf.Src[v], ds1.Src[v], ds16.Src[v])
		}
	}
}

func TestPropertyKernelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(80)
		g := randomConnected(rng, n, 30)
		k := 1 + rng.Intn(5)
		seeds := make([]graph.VID, 0, k)
		for i := 0; i < k; i++ {
			seeds = append(seeds, graph.VID(rng.Intn(n)))
		}
		d := MultiSource(g, seeds)
		bf := BellmanFord(g, seeds)
		ds := DeltaStepping(g, seeds, uint64(1+rng.Intn(20)))
		for v := 0; v < n; v++ {
			if bf.Dist[v] != d.Dist[v] || ds.Dist[v] != d.Dist[v] {
				return false
			}
			if bf.Src[v] != d.Src[v] || ds.Src[v] != d.Src[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTriangleInequalityAndTreeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := randomConnected(rng, n, 40)
		r := Dijkstra(g, 0)
		// Triangle inequality over every arc.
		for _, e := range g.Edges() {
			if r.Dist[e.V] > r.Dist[e.U]+graph.Dist(e.W) {
				return false
			}
			if r.Dist[e.U] > r.Dist[e.V]+graph.Dist(e.W) {
				return false
			}
		}
		// Predecessor consistency: Dist[v] = Dist[Pred[v]] + w(Pred[v], v).
		for v := 1; v < n; v++ {
			p := r.Pred[v]
			if p == graph.NilVID {
				return false
			}
			w, ok := g.HasEdge(p, graph.VID(v))
			if !ok {
				return false
			}
			if r.Dist[v] != r.Dist[p]+graph.Dist(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyVoronoiCellsArePlausible(t *testing.T) {
	// Every vertex belongs to the seed it is genuinely closest to
	// (allowing ties): Dist[v] equals min over seeds of single-source
	// distance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		g := randomConnected(rng, n, 20)
		k := 2 + rng.Intn(4)
		seeds := make([]graph.VID, 0, k)
		for i := 0; i < k; i++ {
			seeds = append(seeds, graph.VID(rng.Intn(n)))
		}
		multi := MultiSource(g, seeds)
		for v := 0; v < n; v++ {
			best := graph.InfDist
			bestSeed := graph.NilVID
			for _, s := range seeds {
				single := Dijkstra(g, s)
				if better(single.Dist[v], s, best, bestSeed) {
					best = single.Dist[v]
					bestSeed = s
				}
			}
			if multi.Dist[v] != best || multi.Src[v] != bestSeed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestAPSPAmongSeeds(t *testing.T) {
	g := lineGraph(10, 2)
	seeds := []graph.VID{0, 5, 9}
	dist, preds := APSPAmongSeeds(g, seeds)
	want := [][]graph.Dist{
		{0, 10, 18},
		{10, 0, 8},
		{18, 8, 0},
	}
	for i := range want {
		for j := range want[i] {
			if dist[i][j] != want[i][j] {
				t.Errorf("dist[%d][%d] = %d, want %d", i, j, dist[i][j], want[i][j])
			}
		}
	}
	if len(preds) != 3 || preds[0][5] != 4 {
		t.Errorf("preds wrong")
	}
}

func TestWorkCountersPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnected(rng, 100, 10)
	r := Dijkstra(g, 0)
	if r.Relaxations < 99 || r.Settled < 100 {
		t.Fatalf("counters implausible: relax=%d settled=%d", r.Relaxations, r.Settled)
	}
	bf := BellmanFord(g, []graph.VID{0})
	if bf.Relaxations < r.Relaxations {
		t.Fatalf("Bellman-Ford did less relaxation work (%d) than Dijkstra (%d)", bf.Relaxations, r.Relaxations)
	}
}
