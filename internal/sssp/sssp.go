// Package sssp implements the sequential shortest-path kernels used by the
// baselines and by verification: Dijkstra (binary heap), Bellman–Ford
// (queue-based), Δ-stepping, and the multi-source (super-source) variants
// that compute Voronoi cells the way Mehlhorn's sequential algorithm does.
//
// The distributed Voronoi computation in internal/voronoi is validated
// against these kernels: for every vertex v the distributed run must agree
// with MultiSource on d1(src(v), v) and on the cell assignment under the
// same tie-breaking rule.
package sssp

import (
	"dsteiner/internal/graph"
	"dsteiner/internal/pq"
)

// Result holds single- or multi-source shortest-path output over the whole
// vertex set.
type Result struct {
	// Dist[v] is the shortest distance from v's source, InfDist if
	// unreachable.
	Dist []graph.Dist
	// Pred[v] is the predecessor on the shortest path, NilVID for sources
	// and unreachable vertices.
	Pred []graph.VID
	// Src[v] is the source vertex v is assigned to (the Voronoi cell
	// owner for multi-source runs), NilVID if unreachable.
	Src []graph.VID
	// Relaxations counts successful distance improvements (work metric).
	Relaxations int64
	// Settled counts pop operations (Dijkstra) or queue extractions.
	Settled int64
}

func newResult(n int) *Result {
	r := &Result{
		Dist: make([]graph.Dist, n),
		Pred: make([]graph.VID, n),
		Src:  make([]graph.VID, n),
	}
	for i := 0; i < n; i++ {
		r.Dist[i] = graph.InfDist
		r.Pred[i] = graph.NilVID
		r.Src[i] = graph.NilVID
	}
	return r
}

// better reports whether (d1, s1) improves on (d2, s2) under the
// repository-wide tie-breaking rule: strictly smaller distance wins; equal
// distance is won by the smaller source (seed) ID. The same rule is used by
// the distributed engine so results are comparable bit-for-bit.
func better(d1 graph.Dist, s1 graph.VID, d2 graph.Dist, s2 graph.VID) bool {
	if d1 != d2 {
		return d1 < d2
	}
	return s1 < s2
}

// Dijkstra computes single-source shortest paths from source.
func Dijkstra(g *graph.Graph, source graph.VID) *Result {
	return MultiSource(g, []graph.VID{source})
}

// MultiSource computes shortest paths from the nearest of the given sources
// — exactly the Voronoi cell computation of Mehlhorn [17]: conceptually a
// super-source with zero-weight arcs to every s in sources. Cell ties are
// broken toward the smaller seed ID.
func MultiSource(g *graph.Graph, sources []graph.VID) *Result {
	n := g.NumVertices()
	res := newResult(n)
	type qitem struct {
		v graph.VID
		d graph.Dist
	}
	h := pq.NewHeap[qitem](len(sources) * 4)
	for _, s := range sources {
		// Duplicate seeds: keep the first (smaller ID wins regardless).
		if res.Dist[s] == 0 {
			continue
		}
		res.Dist[s] = 0
		res.Src[s] = s
		h.Push(qitem{v: s, d: 0}, 0)
	}
	for {
		item, ok := h.Pop()
		if !ok {
			break
		}
		if item.d > res.Dist[item.v] {
			continue // stale entry
		}
		res.Settled++
		v := item.v
		ts, ws := g.Adj(v)
		for i, u := range ts {
			nd := item.d + graph.Dist(ws[i])
			if better(nd, res.Src[v], res.Dist[u], res.Src[u]) {
				res.Dist[u] = nd
				res.Pred[u] = v
				res.Src[u] = res.Src[v]
				res.Relaxations++
				h.Push(qitem{v: u, d: nd}, uint64(nd))
			}
		}
	}
	return res
}

// BellmanFord computes shortest paths from the given sources with a
// queue-based (SPFA-style) Bellman–Ford: the label-correcting analogue of
// the distributed engine's FIFO mode. All edge weights are positive, so
// termination is guaranteed.
func BellmanFord(g *graph.Graph, sources []graph.VID) *Result {
	n := g.NumVertices()
	res := newResult(n)
	queue := pq.NewFIFO[graph.VID](len(sources) * 4)
	inQueue := make([]bool, n)
	for _, s := range sources {
		if res.Dist[s] == 0 {
			continue
		}
		res.Dist[s] = 0
		res.Src[s] = s
		queue.Push(s, 0)
		inQueue[s] = true
	}
	for {
		v, ok := queue.Pop()
		if !ok {
			break
		}
		inQueue[v] = false
		res.Settled++
		dv := res.Dist[v]
		ts, ws := g.Adj(v)
		for i, u := range ts {
			nd := dv + graph.Dist(ws[i])
			if better(nd, res.Src[v], res.Dist[u], res.Src[u]) {
				res.Dist[u] = nd
				res.Pred[u] = v
				res.Src[u] = res.Src[v]
				res.Relaxations++
				if !inQueue[u] {
					queue.Push(u, 0)
					inQueue[u] = true
				}
			}
		}
	}
	return res
}

// DeltaStepping computes shortest paths from sources using a bucket queue of
// width delta. With delta = 1 it behaves like Dijkstra on integer weights;
// large delta degenerates toward Bellman–Ford. Mentioned as the alternative
// distance kernel in §III (Ceccarello et al. [25], Wang et al. [26]).
func DeltaStepping(g *graph.Graph, sources []graph.VID, delta uint64) *Result {
	n := g.NumVertices()
	res := newResult(n)
	type qitem struct {
		v graph.VID
		d graph.Dist
	}
	b := pq.NewBucket[qitem](delta)
	for _, s := range sources {
		if res.Dist[s] == 0 {
			continue
		}
		res.Dist[s] = 0
		res.Src[s] = s
		b.Push(qitem{v: s, d: 0}, 0)
	}
	for {
		item, ok := b.Pop()
		if !ok {
			break
		}
		if item.d > res.Dist[item.v] {
			continue
		}
		res.Settled++
		v := item.v
		dv := res.Dist[v]
		ts, ws := g.Adj(v)
		for i, u := range ts {
			nd := dv + graph.Dist(ws[i])
			if better(nd, res.Src[v], res.Dist[u], res.Src[u]) {
				res.Dist[u] = nd
				res.Pred[u] = v
				res.Src[u] = res.Src[v]
				res.Relaxations++
				b.Push(qitem{v: u, d: nd}, uint64(nd))
			}
		}
	}
	return res
}

// PathTo reconstructs the shortest path edge list from v back to its source
// by following predecessors. Returns nil if v is unreachable. Edges are
// returned in v-to-source order.
func (r *Result) PathTo(g *graph.Graph, v graph.VID) []graph.Edge {
	if r.Src[v] == graph.NilVID {
		return nil
	}
	var path []graph.Edge
	for v != r.Src[v] {
		p := r.Pred[v]
		w, ok := g.HasEdge(p, v)
		if !ok {
			return nil // corrupted predecessor chain
		}
		path = append(path, graph.Edge{U: p, V: v, W: w})
		v = p
	}
	return path
}

// APSPAmongSeeds computes, for every seed, the shortest distance to every
// other seed, by running |S| independent Dijkstra sweeps. This is the
// expensive Step 1 of the KMB algorithm (Alg. 1) and the "APSP" column of
// Table I. The result is indexed [i][j] over seed positions.
func APSPAmongSeeds(g *graph.Graph, seeds []graph.VID) ([][]graph.Dist, [][]graph.VID) {
	dist := make([][]graph.Dist, len(seeds))
	// preds[i] is the full predecessor array of the i-th sweep, needed to
	// expand distance-graph edges back into paths (KMB Step 3).
	preds := make([][]graph.VID, len(seeds))
	for i, s := range seeds {
		r := Dijkstra(g, s)
		row := make([]graph.Dist, len(seeds))
		for j, t := range seeds {
			row[j] = r.Dist[t]
		}
		dist[i] = row
		preds[i] = r.Pred
	}
	return dist, preds
}
