package steinersvc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
)

func testService(t *testing.T) *Service {
	t.Helper()
	b := graph.NewBuilder(9)
	for _, e := range [][3]int32{
		{0, 1, 16}, {0, 4, 2}, {4, 5, 4}, {1, 5, 2}, {1, 2, 20}, {5, 6, 1},
		{2, 6, 1}, {2, 3, 24}, {6, 7, 2}, {3, 7, 2}, {7, 8, 2}, {3, 8, 18},
	} {
		b.AddEdge(graph.VID(e[0]), graph.VID(e[1]), uint32(e[2]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return New(g, core.Default(2))
}

func TestInfoEndpoint(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Vertices != 9 || info.Arcs != 24 {
		t.Fatalf("info = %+v", info)
	}
	if info.MaxWeight != 24 || info.MinWeight != 1 {
		t.Fatalf("weights = %+v", info)
	}
}

func TestSolvePostExplicitSeeds(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	body, _ := json.Marshal(SolveRequest{Seeds: []int32{0, 2, 3, 7, 8}})
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 14 { // the paper's Fig. 1 optimal tree weight
		t.Fatalf("total = %d, want 14", out.Total)
	}
	if len(out.Edges) != 7 || len(out.Seeds) != 5 {
		t.Fatalf("edges=%d seeds=%d", len(out.Edges), len(out.Seeds))
	}
	if len(out.Phases) != 6 {
		t.Fatalf("phases = %d", len(out.Phases))
	}
}

func TestSolveGetConvenienceForm(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/solve?seeds=0,8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Shortest 0-8 path: 0-4-5-6-7-8 = 2+4+1+2+2 = 11.
	if out.Total != 11 {
		t.Fatalf("total = %d, want 11", out.Total)
	}
}

func TestSolveByK(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	body, _ := json.Marshal(SolveRequest{K: 3, Strategy: "uniform"})
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Seeds) != 3 {
		t.Fatalf("seeds = %v", out.Seeds)
	}
}

func TestSolveErrors(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"empty body", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json", strings.NewReader("{}"))
		}, http.StatusBadRequest},
		{"both seeds and k", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json",
				strings.NewReader(`{"seeds":[1],"k":3}`))
		}, http.StatusBadRequest},
		{"bad json", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json", strings.NewReader("{"))
		}, http.StatusBadRequest},
		{"out of range seed", func() (*http.Response, error) {
			return http.Get(srv.URL + "/solve?seeds=0,99999")
		}, http.StatusUnprocessableEntity},
		{"bad strategy", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json",
				strings.NewReader(`{"k":2,"strategy":"nope"}`))
		}, http.StatusBadRequest},
		{"wrong method on info", func() (*http.Response, error) {
			return http.Post(srv.URL+"/info", "", nil)
		}, http.StatusMethodNotAllowed},
		{"delete on solve", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/solve", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/solve?seeds=0,3,8")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = &http.ProtocolError{ErrorString: "bad status"}
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
