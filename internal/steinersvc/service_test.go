package steinersvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
)

// testGraph builds the paper's Fig. 1 example graph.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(9)
	for _, e := range [][3]int32{
		{0, 1, 16}, {0, 4, 2}, {4, 5, 4}, {1, 5, 2}, {1, 2, 20}, {5, 6, 1},
		{2, 6, 1}, {2, 3, 24}, {6, 7, 2}, {3, 7, 2}, {7, 8, 2}, {3, 8, 18},
	} {
		b.AddEdge(graph.VID(e[0]), graph.VID(e[1]), uint32(e[2]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testServiceCfg(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(testGraph(t), core.Default(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// testService and testServicePool build cache-less, job-less services so the
// engine-pool tests observe every query as an engine solve.
func testService(t *testing.T) *Service {
	t.Helper()
	return testServicePool(t, 1)
}

func testServicePool(t *testing.T, engines int) *Service {
	t.Helper()
	return testServiceCfg(t, Config{Engines: engines})
}

func TestInfoEndpoint(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Vertices != 9 || info.Arcs != 24 {
		t.Fatalf("info = %+v", info)
	}
	if info.MaxWeight != 24 || info.MinWeight != 1 {
		t.Fatalf("weights = %+v", info)
	}
}

func TestSolvePostExplicitSeeds(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	body, _ := json.Marshal(SolveRequest{Seeds: []int32{0, 2, 3, 7, 8}})
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 14 { // the paper's Fig. 1 optimal tree weight
		t.Fatalf("total = %d, want 14", out.Total)
	}
	if len(out.Edges) != 7 || len(out.Seeds) != 5 {
		t.Fatalf("edges=%d seeds=%d", len(out.Edges), len(out.Seeds))
	}
	if len(out.Phases) != 6 {
		t.Fatalf("phases = %d", len(out.Phases))
	}
}

func TestSolveGetConvenienceForm(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/solve?seeds=0,8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Shortest 0-8 path: 0-4-5-6-7-8 = 2+4+1+2+2 = 11.
	if out.Total != 11 {
		t.Fatalf("total = %d, want 11", out.Total)
	}
}

func TestSolveByK(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	body, _ := json.Marshal(SolveRequest{K: 3, Strategy: "uniform"})
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Seeds) != 3 {
		t.Fatalf("seeds = %v", out.Seeds)
	}
}

func TestSolveErrors(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"empty body", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json", strings.NewReader("{}"))
		}, http.StatusBadRequest},
		{"both seeds and k", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json",
				strings.NewReader(`{"seeds":[1],"k":3}`))
		}, http.StatusBadRequest},
		{"bad json", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json", strings.NewReader("{"))
		}, http.StatusBadRequest},
		{"out of range seed", func() (*http.Response, error) {
			return http.Get(srv.URL + "/solve?seeds=0,99999")
		}, http.StatusUnprocessableEntity},
		{"bad strategy", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json",
				strings.NewReader(`{"k":2,"strategy":"nope"}`))
		}, http.StatusBadRequest},
		{"wrong method on info", func() (*http.Response, error) {
			return http.Post(srv.URL+"/info", "", nil)
		}, http.StatusMethodNotAllowed},
		{"delete on solve", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/solve", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/solve?seeds=0,3,8")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = &http.ProtocolError{ErrorString: "bad status"}
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestKTooLargeRejectedWith400(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/solve?k=1000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestEnginePoolConcurrentQueries fires many parallel queries with distinct
// expected answers at a 4-engine pool; run under -race this is the
// acceptance test for concurrent in-flight solves with no cross-query state
// leakage (a leaked Voronoi entry or walked mark would corrupt a tree and
// change its total).
func TestEnginePoolConcurrentQueries(t *testing.T) {
	svc := testServicePool(t, 4)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	cases := []struct {
		query string
		total int64
	}{
		{"/solve?seeds=0,2,3,7,8", 14}, // the paper's Fig. 1 tree
		{"/solve?seeds=0,8", 11},       // shortest 0-8 path
		{"/solve?seeds=0,3", 11},       // 0-4-5-6-7-3 = 2+4+1+2+2
		{"/solve?seeds=2,5", 2},        // 5-6-2
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for round := 0; round < 8; round++ {
		for _, tc := range cases {
			wg.Add(1)
			go func(query string, want int64) {
				defer wg.Done()
				resp, err := http.Get(srv.URL + query)
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", query, resp.StatusCode)
					return
				}
				var out SolveResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					errs <- err
					return
				}
				if out.Total != want {
					errs <- fmt.Errorf("%s: total %d, want %d", query, out.Total, want)
				}
			}(tc.query, tc.total)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The pool must have been exercised and returned to idle.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Engines != 4 || st.EnginesIdle != 4 || st.InFlight != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
	if st.Queries != 32 || st.Errors != 0 {
		t.Fatalf("queries=%d errors=%d, want 32/0", st.Queries, st.Errors)
	}
}

func TestStatsEndpoint(t *testing.T) {
	svc := testServicePool(t, 2)
	srv := httptest.NewServer(svc)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/solve?seeds=0,8")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// One failing query must count as an error, not a phase sample.
	resp, err := http.Get(srv.URL + "/solve?seeds=0,99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Engines != 2 || st.Queries != 4 || st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Phases) != 6 {
		t.Fatalf("phases = %d, want 6", len(st.Phases))
	}
	for _, ph := range st.Phases {
		if ph.Calls != 3 {
			t.Fatalf("phase %q calls = %d, want 3", ph.Name, ph.Calls)
		}
	}
	if st.AvgSolveSeconds <= 0 {
		t.Fatalf("avgSolveSeconds = %v", st.AvgSolveSeconds)
	}

	// /stats is GET only.
	post, err := http.Post(srv.URL+"/stats", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats status = %d", post.StatusCode)
	}
}

// TestInfoReportsEngines checks /info includes the pool size.
func TestInfoReportsEngines(t *testing.T) {
	svc := testServicePool(t, 3)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Engines != 3 {
		t.Fatalf("engines = %d, want 3", info.Engines)
	}
}

// TestInfoAndStatsReportShardSubstrate checks the serving layers surface the
// engines' shard substrate: partition kind, delegate count and shard memory.
func TestInfoAndStatsReportShardSubstrate(t *testing.T) {
	opts := core.Default(2)
	opts.Partition = core.PartitionHash
	opts.DelegateThreshold = 3
	s, err := New(testGraph(t), opts, Config{Engines: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Partition != "hash" || info.Ranks != 2 || info.DelegateThreshold != 3 {
		t.Fatalf("info substrate = %+v", info)
	}
	if info.Delegates == 0 || info.ShardBytes <= 0 {
		t.Fatalf("info missing shard substrate: %+v", info)
	}
	if info.StateSlabBytes <= 0 {
		t.Fatalf("info missing state-slab bytes: %+v", info)
	}

	resp2, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp2.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shard.Partition != "hash" || stats.Shard.Ranks != 2 || stats.Shard.DelegateThreshold != 3 {
		t.Fatalf("stats shard = %+v", stats.Shard)
	}
	if stats.Shard.TotalBytes <= 0 || stats.Shard.MaxRankBytes <= 0 ||
		stats.Shard.MaxRankBytes > stats.Shard.TotalBytes {
		t.Fatalf("stats shard bytes inconsistent: %+v", stats.Shard)
	}
	if stats.Shard.Delegates != info.Delegates {
		t.Fatalf("stats delegates %d != info delegates %d", stats.Shard.Delegates, info.Delegates)
	}
	if stats.Shard.StateBytes != info.StateSlabBytes || stats.Shard.MaxRankStateBytes <= 0 ||
		stats.Shard.MaxRankStateBytes > stats.Shard.StateBytes {
		t.Fatalf("stats state-slab bytes inconsistent with info: %+v vs %+v", stats.Shard, info)
	}
}

// --- cache, batch, async, shutdown ---

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getStats(t *testing.T, baseURL string) StatsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	return decodeBody[StatsResponse](t, resp)
}

// TestSolveCacheHitsAndCanonicalization: repeated and permuted terminal
// sets must be answered from the cache — one engine solve total — and the
// /stats cache block must account for it.
func TestSolveCacheHitsAndCanonicalization(t *testing.T) {
	svc := testServiceCfg(t, Config{Engines: 1, CacheEntries: 8})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	queries := []string{
		"/solve?seeds=0,2,3,7,8",
		"/solve?seeds=0,2,3,7,8", // identical
		"/solve?seeds=8,3,0,7,2", // permuted: same canonical set
		"/solve?seeds=3,8,2,0,7", // another permutation
	}
	for i, q := range queries {
		resp, err := http.Get(srv.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, resp.StatusCode)
		}
		out := decodeBody[SolveResponse](t, resp)
		if out.Total != 14 {
			t.Fatalf("query %d: total = %d, want 14", i, out.Total)
		}
		if wantCached := i > 0; out.Cached != wantCached {
			t.Fatalf("query %d: cached = %v, want %v", i, out.Cached, wantCached)
		}
	}
	st := getStats(t, srv.URL)
	if st.Queries != 1 {
		t.Fatalf("engine queries = %d, want 1 (rest served from cache)", st.Queries)
	}
	if st.Cache == nil || st.Cache.Hits != 3 || st.Cache.Misses != 1 || st.Cache.Size != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if got, want := st.Cache.HitRate, 0.75; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("hit rate = %v, want %v", got, want)
	}
}

// TestDuplicateSeedsMapTo400 covers the satellite fix: duplicate terminals
// are a client error on every endpoint.
func TestDuplicateSeedsMapTo400(t *testing.T) {
	svc := testServiceCfg(t, Config{Engines: 1, CacheEntries: 8, JobQueue: 4})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/solve?seeds=0,8,0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/solve status = %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/solve/async", SolveRequest{Seeds: []int32{1, 1}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/solve/async status = %d, want 400", resp.StatusCode)
	}

	resp = postJSON(t, srv.URL+"/solve/batch", BatchRequest{Queries: []SolveRequest{
		{Seeds: []int32{0, 8}},
		{Seeds: []int32{2, 2}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/solve/batch status = %d", resp.StatusCode)
	}
	batch := decodeBody[BatchResponse](t, resp)
	if len(batch.Results) != 2 {
		t.Fatalf("results = %d", len(batch.Results))
	}
	if batch.Results[0].Error != "" || batch.Results[0].Result == nil {
		t.Fatalf("valid item failed: %+v", batch.Results[0])
	}
	if batch.Results[1].Error == "" || !strings.Contains(batch.Results[1].Error, "duplicate seed") {
		t.Fatalf("duplicate item error = %q", batch.Results[1].Error)
	}
}

// TestSolveBatchEndpoint exercises POST /solve/batch: explicit seeds, k
// selection, per-item errors, intra-batch dedup and cache interplay.
func TestSolveBatchEndpoint(t *testing.T) {
	svc := testServiceCfg(t, Config{Engines: 1, CacheEntries: 8})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	// Warm the cache with one query.
	if resp, err := http.Get(srv.URL + "/solve?seeds=0,8"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	req := BatchRequest{Queries: []SolveRequest{
		{Seeds: []int32{0, 2, 3, 7, 8}}, // miss
		{Seeds: []int32{8, 0}},          // cache hit (permuted warm query)
		{Seeds: []int32{2, 5}},          // miss
		{},                              // invalid: neither seeds nor k
		{Seeds: []int32{0, 99999}},      // out of range: engine error
		{K: 3, Strategy: "uniform"},     // k-selection
		{Seeds: []int32{2, 5}},          // duplicate of item 2 within the batch
	}}
	resp := postJSON(t, srv.URL+"/solve/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decodeBody[BatchResponse](t, resp)
	if len(out.Results) != len(req.Queries) {
		t.Fatalf("results = %d, want %d", len(out.Results), len(req.Queries))
	}
	wantTotals := map[int]int64{0: 14, 1: 11, 2: 2, 6: 2}
	for i, want := range wantTotals {
		r := out.Results[i]
		if r.Error != "" || r.Result == nil {
			t.Fatalf("item %d: %+v", i, r)
		}
		if r.Result.Total != want {
			t.Fatalf("item %d: total = %d, want %d", i, r.Result.Total, want)
		}
	}
	if !out.Results[1].Result.Cached {
		t.Fatal("item 1 should be a cache hit")
	}
	if out.Results[3].Error == "" || !strings.Contains(out.Results[3].Error, "need seeds or k") {
		t.Fatalf("item 3 error = %q", out.Results[3].Error)
	}
	if out.Results[4].Error == "" || !strings.Contains(out.Results[4].Error, "out of range") {
		t.Fatalf("item 4 error = %q", out.Results[4].Error)
	}
	if out.Results[5].Result == nil || len(out.Results[5].Result.Seeds) != 3 {
		t.Fatalf("item 5: %+v", out.Results[5])
	}
	st := getStats(t, srv.URL)
	if st.BatchRequests != 1 || st.BatchQueries != int64(len(req.Queries)) {
		t.Fatalf("batch stats: %d requests, %d queries", st.BatchRequests, st.BatchQueries)
	}
	// Items 2 and 6 share one solve (intra-batch dedup): engine queries are
	// warmup + item0 + item2/6 + item4(error) + item5 = 5.
	if st.Queries != 5 {
		t.Fatalf("engine queries = %d, want 5", st.Queries)
	}
	if st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}

	// A batch must be a POST with at least one query.
	if resp, err := http.Get(srv.URL + "/solve/batch"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /solve/batch status = %d", resp.StatusCode)
		}
	}
	resp = postJSON(t, srv.URL+"/solve/batch", BatchRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", resp.StatusCode)
	}
}

// pollJob polls GET /jobs/{id} until the job leaves the queue/run states.
func pollJob(t *testing.T, baseURL, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		job := decodeBody[JobResponse](t, resp)
		if job.State == string(jobDone) || job.State == string(jobFailed) {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, job.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	svc := testServiceCfg(t, Config{Engines: 1, CacheEntries: 8, JobQueue: 4})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	resp := postJSON(t, srv.URL+"/solve/async", SolveRequest{Seeds: []int32{0, 8}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	acc := decodeBody[JobAccepted](t, resp)
	if acc.ID == "" || acc.Location != "/jobs/"+acc.ID {
		t.Fatalf("accepted = %+v", acc)
	}
	job := pollJob(t, srv.URL, acc.ID)
	if job.State != string(jobDone) || job.Result == nil || job.Result.Total != 11 {
		t.Fatalf("job = %+v", job)
	}
	if job.QueuedSeconds < 0 || job.RunSeconds < 0 {
		t.Fatalf("timings = %+v", job)
	}

	// The async result must have landed in the shared cache: a sync query
	// for the same set is a hit.
	sresp, err := http.Get(srv.URL + "/solve?seeds=8,0")
	if err != nil {
		t.Fatal(err)
	}
	sync := decodeBody[SolveResponse](t, sresp)
	if !sync.Cached || sync.Total != 11 {
		t.Fatalf("sync after async: %+v", sync)
	}

	// A job that fails at solve time (disconnected is impossible on Fig. 1;
	// use a job that resolves but errors: seeds in range, solver error is
	// impossible here — so exercise the failed path via single seed? A
	// single seed succeeds. Instead check unknown-job and method handling.)
	if resp, err := http.Get(srv.URL + "/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job status = %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(srv.URL+"/jobs/"+acc.ID, "", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /jobs status = %d", resp.StatusCode)
		}
	}
	if resp, err := http.Get(srv.URL + "/solve/async"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /solve/async status = %d", resp.StatusCode)
		}
	}
	st := getStats(t, srv.URL)
	if st.Jobs == nil || st.Jobs.Completed != 1 || st.Jobs.Failed != 0 || st.Jobs.QueueCapacity != 4 {
		t.Fatalf("job stats = %+v", st.Jobs)
	}
}

func TestAsyncDisabledIs404(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp := postJSON(t, srv.URL+"/solve/async", SolveRequest{Seeds: []int32{0, 8}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 when async is disabled", resp.StatusCode)
	}
}

// TestAsyncQueueOverflow429 fills the job queue while the only engine is
// held, and checks the bounded queue pushes back with 429 instead of
// buffering without limit.
func TestAsyncQueueOverflow429(t *testing.T) {
	svc := testServiceCfg(t, Config{Engines: 1, JobQueue: 1})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	// Hold the only engine so the worker cannot drain: the worker may pull
	// one job off the queue and block acquiring an engine; the queue holds
	// one more; the next submission must overflow.
	eng := <-svc.engines
	var ids []string
	overflowed := 0
	for i := 0; i < 3; i++ {
		resp := postJSON(t, srv.URL+"/solve/async", SolveRequest{Seeds: []int32{0, 8}})
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, decodeBody[JobAccepted](t, resp).ID)
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			resp.Body.Close()
			overflowed++
		default:
			resp.Body.Close()
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
	}
	if overflowed == 0 {
		t.Fatal("queue never overflowed")
	}
	st := getStats(t, srv.URL)
	if st.Jobs == nil || st.Jobs.Rejected != int64(overflowed) {
		t.Fatalf("rejected = %+v, want %d", st.Jobs, overflowed)
	}
	// Release the engine: every accepted job must still complete.
	svc.engines <- eng
	for _, id := range ids {
		if job := pollJob(t, srv.URL, id); job.State != string(jobDone) {
			t.Fatalf("job %s = %+v", id, job)
		}
	}
}

// TestShutdownDrains covers graceful shutdown: queued jobs finish, engines
// are reclaimed and closed, later submissions fail with 503, and repeated
// shutdowns are safe.
func TestShutdownDrains(t *testing.T) {
	svc := testServiceCfg(t, Config{Engines: 2, CacheEntries: 8, JobQueue: 8})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	var ids []string
	for _, seeds := range [][]int32{{0, 8}, {0, 3}, {2, 5}} {
		resp := postJSON(t, srv.URL+"/solve/async", SolveRequest{Seeds: seeds})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d", resp.StatusCode)
		}
		ids = append(ids, decodeBody[JobAccepted](t, resp).ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Every submitted job ran to completion before the engines closed.
	for _, id := range ids {
		snap, ok := svc.jobs.get(id)
		if !ok || snap.State != jobDone {
			t.Fatalf("job %s after shutdown: %+v (ok=%v)", id, snap, ok)
		}
	}
	// Intake is closed.
	resp := postJSON(t, srv.URL+"/solve/async", SolveRequest{Seeds: []int32{0, 8}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submit status = %d, want 503", resp.StatusCode)
	}
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestConcurrentBatchAsyncCached is the -race acceptance test: concurrent
// /solve (identical, cache-coalesced), /solve/batch and /solve/async traffic
// against one 2-engine pool, all answers checked for correctness.
func TestConcurrentBatchAsyncCached(t *testing.T) {
	svc := testServiceCfg(t, Config{Engines: 2, CacheEntries: 32, JobQueue: 32})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Identical cached queries.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/solve?seeds=0,2,3,7,8")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out SolveResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			if out.Total != 14 {
				errs <- fmt.Errorf("cached solve total = %d, want 14", out.Total)
			}
		}()
	}
	// Batches with distinct expected answers.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(BatchRequest{Queries: []SolveRequest{
				{Seeds: []int32{0, 8}},
				{Seeds: []int32{2, 5}},
				{Seeds: []int32{0, 3}},
			}})
			resp, err := http.Post(srv.URL+"/solve/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var out BatchResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- err
				return
			}
			for j, want := range []int64{11, 2, 11} {
				if out.Results[j].Result == nil || out.Results[j].Result.Total != want {
					errs <- fmt.Errorf("batch item %d: %+v, want total %d", j, out.Results[j], want)
				}
			}
		}()
	}
	// Async jobs, polled to completion.
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(SolveRequest{Seeds: []int32{0, 2, 3, 7, 8}})
			resp, err := http.Post(srv.URL+"/solve/async", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				resp.Body.Close() // bounded queue pushed back: acceptable under load
				return
			}
			if resp.StatusCode != http.StatusAccepted {
				resp.Body.Close()
				errs <- fmt.Errorf("async submit status %d", resp.StatusCode)
				return
			}
			var acc JobAccepted
			err = json.NewDecoder(resp.Body).Decode(&acc)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			deadline := time.Now().Add(10 * time.Second)
			for {
				jr, err := http.Get(srv.URL + "/jobs/" + acc.ID)
				if err != nil {
					errs <- err
					return
				}
				var job JobResponse
				err = json.NewDecoder(jr.Body).Decode(&job)
				jr.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if job.State == string(jobDone) {
					if job.Result == nil || job.Result.Total != 14 {
						errs <- fmt.Errorf("async job result %+v", job.Result)
					}
					return
				}
				if job.State == string(jobFailed) || time.Now().After(deadline) {
					errs <- fmt.Errorf("async job %s: state %s err %q", acc.ID, job.State, job.Error)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := getStats(t, srv.URL)
	if st.InFlight != 0 || st.EnginesIdle != 2 {
		t.Fatalf("pool not quiescent: %+v", st)
	}
	if st.Cache == nil || st.Cache.Hits+st.Cache.Coalesced == 0 {
		t.Fatalf("cache never hit: %+v", st.Cache)
	}
}
