package steinersvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
)

func testService(t *testing.T) *Service {
	t.Helper()
	return testServicePool(t, 1)
}

func testServicePool(t *testing.T, engines int) *Service {
	t.Helper()
	b := graph.NewBuilder(9)
	for _, e := range [][3]int32{
		{0, 1, 16}, {0, 4, 2}, {4, 5, 4}, {1, 5, 2}, {1, 2, 20}, {5, 6, 1},
		{2, 6, 1}, {2, 3, 24}, {6, 7, 2}, {3, 7, 2}, {7, 8, 2}, {3, 8, 18},
	} {
		b.AddEdge(graph.VID(e[0]), graph.VID(e[1]), uint32(e[2]))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, core.Default(2), engines)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestInfoEndpoint(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Vertices != 9 || info.Arcs != 24 {
		t.Fatalf("info = %+v", info)
	}
	if info.MaxWeight != 24 || info.MinWeight != 1 {
		t.Fatalf("weights = %+v", info)
	}
}

func TestSolvePostExplicitSeeds(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	body, _ := json.Marshal(SolveRequest{Seeds: []int32{0, 2, 3, 7, 8}})
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total != 14 { // the paper's Fig. 1 optimal tree weight
		t.Fatalf("total = %d, want 14", out.Total)
	}
	if len(out.Edges) != 7 || len(out.Seeds) != 5 {
		t.Fatalf("edges=%d seeds=%d", len(out.Edges), len(out.Seeds))
	}
	if len(out.Phases) != 6 {
		t.Fatalf("phases = %d", len(out.Phases))
	}
}

func TestSolveGetConvenienceForm(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/solve?seeds=0,8")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// Shortest 0-8 path: 0-4-5-6-7-8 = 2+4+1+2+2 = 11.
	if out.Total != 11 {
		t.Fatalf("total = %d, want 11", out.Total)
	}
}

func TestSolveByK(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	body, _ := json.Marshal(SolveRequest{K: 3, Strategy: "uniform"})
	resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Seeds) != 3 {
		t.Fatalf("seeds = %v", out.Seeds)
	}
}

func TestSolveErrors(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"empty body", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json", strings.NewReader("{}"))
		}, http.StatusBadRequest},
		{"both seeds and k", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json",
				strings.NewReader(`{"seeds":[1],"k":3}`))
		}, http.StatusBadRequest},
		{"bad json", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json", strings.NewReader("{"))
		}, http.StatusBadRequest},
		{"out of range seed", func() (*http.Response, error) {
			return http.Get(srv.URL + "/solve?seeds=0,99999")
		}, http.StatusUnprocessableEntity},
		{"bad strategy", func() (*http.Response, error) {
			return http.Post(srv.URL+"/solve", "application/json",
				strings.NewReader(`{"k":2,"strategy":"nope"}`))
		}, http.StatusBadRequest},
		{"wrong method on info", func() (*http.Response, error) {
			return http.Post(srv.URL+"/info", "", nil)
		}, http.StatusMethodNotAllowed},
		{"delete on solve", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/solve", nil)
			return http.DefaultClient.Do(req)
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/solve?seeds=0,3,8")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = &http.ProtocolError{ErrorString: "bad status"}
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestKTooLargeRejectedWith400(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/solve?k=1000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestEnginePoolConcurrentQueries fires many parallel queries with distinct
// expected answers at a 4-engine pool; run under -race this is the
// acceptance test for concurrent in-flight solves with no cross-query state
// leakage (a leaked Voronoi entry or walked mark would corrupt a tree and
// change its total).
func TestEnginePoolConcurrentQueries(t *testing.T) {
	svc := testServicePool(t, 4)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	cases := []struct {
		query string
		total int64
	}{
		{"/solve?seeds=0,2,3,7,8", 14}, // the paper's Fig. 1 tree
		{"/solve?seeds=0,8", 11},       // shortest 0-8 path
		{"/solve?seeds=0,3", 11},       // 0-4-5-6-7-3 = 2+4+1+2+2
		{"/solve?seeds=2,5", 2},        // 5-6-2
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for round := 0; round < 8; round++ {
		for _, tc := range cases {
			wg.Add(1)
			go func(query string, want int64) {
				defer wg.Done()
				resp, err := http.Get(srv.URL + query)
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d", query, resp.StatusCode)
					return
				}
				var out SolveResponse
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					errs <- err
					return
				}
				if out.Total != want {
					errs <- fmt.Errorf("%s: total %d, want %d", query, out.Total, want)
				}
			}(tc.query, tc.total)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The pool must have been exercised and returned to idle.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Engines != 4 || st.EnginesIdle != 4 || st.InFlight != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
	if st.Queries != 32 || st.Errors != 0 {
		t.Fatalf("queries=%d errors=%d, want 32/0", st.Queries, st.Errors)
	}
}

func TestStatsEndpoint(t *testing.T) {
	svc := testServicePool(t, 2)
	srv := httptest.NewServer(svc)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/solve?seeds=0,8")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// One failing query must count as an error, not a phase sample.
	resp, err := http.Get(srv.URL + "/solve?seeds=0,99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Engines != 2 || st.Queries != 4 || st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Phases) != 6 {
		t.Fatalf("phases = %d, want 6", len(st.Phases))
	}
	for _, ph := range st.Phases {
		if ph.Calls != 3 {
			t.Fatalf("phase %q calls = %d, want 3", ph.Name, ph.Calls)
		}
	}
	if st.AvgSolveSeconds <= 0 {
		t.Fatalf("avgSolveSeconds = %v", st.AvgSolveSeconds)
	}

	// /stats is GET only.
	post, err := http.Post(srv.URL+"/stats", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats status = %d", post.StatusCode)
	}
}

// TestInfoReportsEngines checks /info includes the pool size.
func TestInfoReportsEngines(t *testing.T) {
	svc := testServicePool(t, 3)
	srv := httptest.NewServer(svc)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Engines != 3 {
		t.Fatalf("engines = %d, want 3", info.Engines)
	}
}
