package steinersvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dsteiner/internal/core"
	"dsteiner/internal/faultpoint"
)

// TestStatsFaultsBlockInproc pins the /stats faults block shape for the
// backend that cannot fault: it must be present (not omitted) with zeroed
// session accounting, so dashboards can scrape one schema for both
// backends.
func TestStatsFaultsBlockInproc(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	blob, ok := raw["faults"]
	if !ok {
		t.Fatal("/stats response has no faults block")
	}
	var fs FaultStats
	if err := json.Unmarshal(blob, &fs); err != nil {
		t.Fatal(err)
	}
	// Injected is process-global (other tests in this binary may have armed
	// fault points); the session accounting is what must be zero here.
	if fs.Detected != 0 || fs.Rejoins != 0 || fs.Heals != 0 || fs.RetriedSolves != 0 || fs.LastError != "" {
		t.Fatalf("inproc service reports session faults: %+v", fs)
	}
}

// TestStatsFaultsBlockAfterRecovery drives one full recovery through the
// HTTP service: a rank crash (injected faultpoint) poisons the first solve
// of a recovering TCP fleet, the coordinator heals and requeues, the client
// still gets the byte-identical answer with a 200 — and /stats then
// accounts for the whole episode under "faults".
func TestStatsFaultsBlockAfterRecovery(t *testing.T) {
	g := testGraph(t)
	opts := core.Default(2)
	opts.Backend = core.BackendTCP
	opts.Workers = 2
	opts.ListenAddr = "127.0.0.1:0"
	opts.Recover = true
	opts.RejoinWait = 15 * time.Second
	var wg sync.WaitGroup
	opts.OnListen = func(addr string) {
		for i := 0; i < opts.Workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := core.ServeWorker(addr, core.WorkerConfig{RejoinWait: 15 * time.Second}); err != nil {
					t.Errorf("worker: %v", err)
				}
			}()
		}
	}
	svc, err := New(g, opts, Config{Engines: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wg.Wait)
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc)
	defer srv.Close()

	ref := testService(t) // in-process reference on the same graph
	refSrv := httptest.NewServer(ref)
	defer refSrv.Close()

	getJSON := func(url string, out any) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}

	// The reference is solved BEFORE arming: the faultpoint registry is
	// process-global and the reference engine runs the same phase hooks.
	var want SolveResponse
	getJSON(refSrv.URL+"/solve?seeds=0,3,5", &want)

	t.Cleanup(faultpoint.Reset)
	faultpoint.Arm("solve.phase3", faultpoint.ActPanic)

	var got SolveResponse
	getJSON(srv.URL+"/solve?seeds=0,3,5", &got)
	if got.Total != want.Total || len(got.Edges) != len(want.Edges) {
		t.Fatalf("recovered solve differs: %+v != %+v", got, want)
	}
	for i := range got.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("recovered solve edge %d differs: %+v != %+v", i, got.Edges[i], want.Edges[i])
		}
	}

	var st StatsResponse
	getJSON(srv.URL+"/stats", &st)
	fs := st.Faults
	if fs.Injected < 1 {
		t.Fatalf("armed faultpoint fired but faults.injected = %d", fs.Injected)
	}
	if fs.Detected < 1 || fs.Heals < 1 || fs.Rejoins < 2 {
		t.Fatalf("recovery not accounted: %+v", fs)
	}
	if fs.RetriedSolves < 1 {
		t.Fatalf("healed query not counted as retried: %+v", fs)
	}
	if fs.LastError == "" {
		t.Fatalf("faults block lost the poisoning reason: %+v", fs)
	}
}
