// Package steinersvc implements the HTTP query service behind
// cmd/steinersvc: the paper's §I interactive-exploration framework. A
// loaded graph is shared read-only across queries; each request checks a
// solver Engine out of a bounded pool, runs the query on pooled per-query
// state, and streams the resulting tree back as JSON. With a pool of N
// engines, N queries run concurrently on one resident graph; further
// requests queue for the next free engine, keeping memory bounded and
// per-query latency predictable.
package steinersvc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
	"dsteiner/internal/seeds"
)

// Service is an http.Handler answering Steiner-tree queries on one graph.
type Service struct {
	g    *graph.Graph
	opts core.Options
	mux  *http.ServeMux

	// engines is the bounded pool: a query blocks here until an engine is
	// free, so at most cap(engines) solves are in flight at once.
	engines chan *core.Engine

	stats serviceStats
}

// serviceStats aggregates pool utilization and per-query phase timings for
// the /stats endpoint.
type serviceStats struct {
	mu           sync.Mutex
	inFlight     int
	maxInFlight  int
	queries      int64
	errors       int64
	solveSeconds float64
	phaseSeconds map[string]float64
	phaseCalls   map[string]int64
}

// New builds a Service over g with per-query solver options and a pool of
// the given number of engines (minimum 1). Each engine pins opts.Ranks
// goroutines and O(|V|) solver state for its lifetime.
func New(g *graph.Graph, opts core.Options, engines int) (*Service, error) {
	if engines < 1 {
		engines = 1
	}
	s := &Service{
		g:       g,
		opts:    opts,
		mux:     http.NewServeMux(),
		engines: make(chan *core.Engine, engines),
	}
	s.stats.phaseSeconds = make(map[string]float64, len(core.PhaseNames))
	s.stats.phaseCalls = make(map[string]int64, len(core.PhaseNames))
	for i := 0; i < engines; i++ {
		e, err := core.NewEngine(g, opts)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("steinersvc: engine %d: %w", i, err)
		}
		s.engines <- e
	}
	s.mux.HandleFunc("/info", s.handleInfo)
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s, nil
}

// MustNew is New that panics on error, for tests and examples with known
// good configurations.
func MustNew(g *graph.Graph, opts core.Options, engines int) *Service {
	s, err := New(g, opts, engines)
	if err != nil {
		panic(err)
	}
	return s
}

// NumEngines returns the engine pool capacity.
func (s *Service) NumEngines() int { return cap(s.engines) }

// Close releases every pooled engine's pinned goroutines. In-flight
// requests must have drained first.
func (s *Service) Close() {
	for {
		select {
		case e := <-s.engines:
			e.Close()
		default:
			return
		}
	}
}

// ServeHTTP dispatches to the API endpoints.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// InfoResponse describes the loaded graph.
type InfoResponse struct {
	Vertices  int     `json:"vertices"`
	Arcs      int64   `json:"arcs"`
	MaxDegree int     `json:"maxDegree"`
	AvgDegree float64 `json:"avgDegree"`
	MinWeight uint32  `json:"minWeight"`
	MaxWeight uint32  `json:"maxWeight"`
	Engines   int     `json:"engines"`
}

// SolveRequest is the /solve request body. Exactly one of Seeds or K must
// be set; Strategy defaults to BFS-level when K is used.
type SolveRequest struct {
	Seeds    []int32 `json:"seeds,omitempty"`
	K        int     `json:"k,omitempty"`
	Strategy string  `json:"strategy,omitempty"`
	RNGSeed  int64   `json:"rngSeed,omitempty"`
}

// TreeEdge is one Steiner tree edge.
type TreeEdge struct {
	U int32  `json:"u"`
	V int32  `json:"v"`
	W uint32 `json:"w"`
}

// PhaseInfo reports one solver phase.
type PhaseInfo struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Sent    int64   `json:"sent"`
}

// SolveResponse is the /solve reply.
type SolveResponse struct {
	Seeds           []int32     `json:"seeds"`
	Edges           []TreeEdge  `json:"edges"`
	Total           int64       `json:"total"`
	SteinerVertices int         `json:"steinerVertices"`
	Phases          []PhaseInfo `json:"phases"`
}

// PhaseStats aggregates one solver phase across all served queries.
type PhaseStats struct {
	Name         string  `json:"name"`
	Calls        int64   `json:"calls"`
	TotalSeconds float64 `json:"totalSeconds"`
	AvgSeconds   float64 `json:"avgSeconds"`
}

// StatsResponse is the /stats reply: engine-pool utilization plus
// cumulative per-phase timings.
type StatsResponse struct {
	Engines         int          `json:"engines"`
	EnginesIdle     int          `json:"enginesIdle"`
	InFlight        int          `json:"inFlight"`
	MaxInFlight     int          `json:"maxInFlight"`
	Queries         int64        `json:"queries"`
	Errors          int64        `json:"errors"`
	AvgSolveSeconds float64      `json:"avgSolveSeconds"`
	Phases          []PhaseStats `json:"phases"`
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	minW, maxW := s.g.WeightRange()
	writeJSON(w, InfoResponse{
		Vertices:  s.g.NumVertices(),
		Arcs:      s.g.NumArcs(),
		MaxDegree: s.g.MaxDegree(),
		AvgDegree: s.g.AvgDegree(),
		MinWeight: minW,
		MaxWeight: maxW,
		Engines:   s.NumEngines(),
	})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	st := &s.stats
	st.mu.Lock()
	resp := StatsResponse{
		Engines:     s.NumEngines(),
		EnginesIdle: len(s.engines),
		InFlight:    st.inFlight,
		MaxInFlight: st.maxInFlight,
		Queries:     st.queries,
		Errors:      st.errors,
	}
	if st.queries > 0 {
		resp.AvgSolveSeconds = st.solveSeconds / float64(st.queries)
	}
	for _, name := range core.PhaseNames {
		calls := st.phaseCalls[name]
		if calls == 0 {
			continue
		}
		total := st.phaseSeconds[name]
		resp.Phases = append(resp.Phases, PhaseStats{
			Name:         name,
			Calls:        calls,
			TotalSeconds: total,
			AvgSeconds:   total / float64(calls),
		})
	}
	st.mu.Unlock()
	writeJSON(w, resp)
}

// acquire checks an engine out of the pool, blocking until one is free or
// the request is cancelled.
func (s *Service) acquire(r *http.Request) (*core.Engine, error) {
	select {
	case e := <-s.engines:
		s.stats.mu.Lock()
		s.stats.inFlight++
		if s.stats.inFlight > s.stats.maxInFlight {
			s.stats.maxInFlight = s.stats.inFlight
		}
		s.stats.mu.Unlock()
		return e, nil
	case <-r.Context().Done():
		return nil, r.Context().Err()
	}
}

// release folds the query's outcome into the aggregate statistics, then
// returns the engine to the pool. Stats go first: once the engine is back
// on the channel a blocked request resumes and increments inFlight, and the
// stale not-yet-decremented count would let maxInFlight exceed the pool
// size.
func (s *Service) release(e *core.Engine, res *core.Result, elapsed time.Duration, err error) {
	st := &s.stats
	st.mu.Lock()
	st.inFlight--
	st.queries++
	st.solveSeconds += elapsed.Seconds()
	if err != nil {
		st.errors++
	} else {
		for _, ph := range res.Phases {
			st.phaseSeconds[ph.Name] += ph.Seconds
			st.phaseCalls[ph.Name]++
		}
	}
	st.mu.Unlock()
	s.engines <- e
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, err := parseSolveRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seedSet, err := s.resolveSeeds(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	eng, err := s.acquire(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	start := time.Now()
	res, err := eng.Solve(seedSet)
	s.release(eng, res, time.Since(start), err)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := SolveResponse{
		Total:           int64(res.TotalDistance),
		SteinerVertices: res.SteinerVertices,
	}
	for _, sd := range res.Seeds {
		resp.Seeds = append(resp.Seeds, int32(sd))
	}
	for _, e := range res.Tree {
		resp.Edges = append(resp.Edges, TreeEdge{U: int32(e.U), V: int32(e.V), W: e.W})
	}
	for _, ph := range res.Phases {
		resp.Phases = append(resp.Phases, PhaseInfo{Name: ph.Name, Seconds: ph.Seconds, Sent: ph.Sent})
	}
	writeJSON(w, resp)
}

func parseSolveRequest(r *http.Request) (SolveRequest, error) {
	var req SolveRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad JSON body: %w", err)
		}
	case http.MethodGet:
		if q := r.URL.Query().Get("seeds"); q != "" {
			for _, part := range strings.Split(q, ",") {
				id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
				if err != nil {
					return req, fmt.Errorf("bad seed %q", part)
				}
				req.Seeds = append(req.Seeds, int32(id))
			}
		}
		if q := r.URL.Query().Get("k"); q != "" {
			k, err := strconv.Atoi(q)
			if err != nil {
				return req, fmt.Errorf("bad k %q", q)
			}
			req.K = k
		}
		req.Strategy = r.URL.Query().Get("strategy")
	default:
		return req, fmt.Errorf("GET or POST only")
	}
	if len(req.Seeds) == 0 && req.K <= 0 {
		return req, fmt.Errorf("need seeds or k")
	}
	if len(req.Seeds) > 0 && req.K > 0 {
		return req, fmt.Errorf("use either seeds or k, not both")
	}
	return req, nil
}

func (s *Service) resolveSeeds(req SolveRequest) ([]graph.VID, error) {
	if len(req.Seeds) > 0 {
		out := make([]graph.VID, len(req.Seeds))
		for i, id := range req.Seeds {
			out[i] = graph.VID(id)
		}
		return out, nil
	}
	if req.K > s.g.NumVertices() {
		return nil, fmt.Errorf("k=%d exceeds graph size %d", req.K, s.g.NumVertices())
	}
	strat := seeds.BFSLevel
	switch strings.ToLower(req.Strategy) {
	case "", "bfs-level":
	case "uniform":
		strat = seeds.UniformRandom
	case "eccentric":
		strat = seeds.Eccentric
	case "proximate":
		strat = seeds.Proximate
	default:
		return nil, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
	return seeds.Select(s.g, req.K, strat, req.RNGSeed)
}

// writeJSON marshals v before touching the ResponseWriter, so an encoding
// failure surfaces as a 500 instead of a silently truncated 200. Errors
// writing the marshaled bytes to a departed client are unrecoverable and
// intentionally dropped.
func writeJSON(w http.ResponseWriter, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("encoding response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(buf, '\n'))
}
