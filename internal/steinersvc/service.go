// Package steinersvc implements the HTTP query service behind
// cmd/steinersvc: the paper's §I interactive-exploration framework. A
// loaded graph is shared read-only across queries; each request runs the
// distributed solver and streams the resulting tree back as JSON.
package steinersvc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
	"dsteiner/internal/seeds"
)

// Service is an http.Handler answering Steiner-tree queries on one graph.
type Service struct {
	g    *graph.Graph
	opts core.Options
	mux  *http.ServeMux
	// One solve at a time: the solver already saturates the simulated
	// ranks; queueing queries keeps per-query latency predictable
	// (matching the interactive framing rather than maximizing QPS).
	mu sync.Mutex
}

// New builds a Service over g with per-query solver options.
func New(g *graph.Graph, opts core.Options) *Service {
	s := &Service{g: g, opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("/info", s.handleInfo)
	s.mux.HandleFunc("/solve", s.handleSolve)
	return s
}

// ServeHTTP dispatches to the API endpoints.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// InfoResponse describes the loaded graph.
type InfoResponse struct {
	Vertices  int     `json:"vertices"`
	Arcs      int64   `json:"arcs"`
	MaxDegree int     `json:"maxDegree"`
	AvgDegree float64 `json:"avgDegree"`
	MinWeight uint32  `json:"minWeight"`
	MaxWeight uint32  `json:"maxWeight"`
}

// SolveRequest is the /solve request body. Exactly one of Seeds or K must
// be set; Strategy defaults to BFS-level when K is used.
type SolveRequest struct {
	Seeds    []int32 `json:"seeds,omitempty"`
	K        int     `json:"k,omitempty"`
	Strategy string  `json:"strategy,omitempty"`
	RNGSeed  int64   `json:"rngSeed,omitempty"`
}

// TreeEdge is one Steiner tree edge.
type TreeEdge struct {
	U int32  `json:"u"`
	V int32  `json:"v"`
	W uint32 `json:"w"`
}

// PhaseInfo reports one solver phase.
type PhaseInfo struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Sent    int64   `json:"sent"`
}

// SolveResponse is the /solve reply.
type SolveResponse struct {
	Seeds           []int32     `json:"seeds"`
	Edges           []TreeEdge  `json:"edges"`
	Total           int64       `json:"total"`
	SteinerVertices int         `json:"steinerVertices"`
	Phases          []PhaseInfo `json:"phases"`
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	minW, maxW := s.g.WeightRange()
	writeJSON(w, InfoResponse{
		Vertices:  s.g.NumVertices(),
		Arcs:      s.g.NumArcs(),
		MaxDegree: s.g.MaxDegree(),
		AvgDegree: s.g.AvgDegree(),
		MinWeight: minW,
		MaxWeight: maxW,
	})
}

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, err := parseSolveRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seedSet, err := s.resolveSeeds(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	res, err := core.Solve(s.g, seedSet, s.opts)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := SolveResponse{
		Total:           int64(res.TotalDistance),
		SteinerVertices: res.SteinerVertices,
	}
	for _, sd := range res.Seeds {
		resp.Seeds = append(resp.Seeds, int32(sd))
	}
	for _, e := range res.Tree {
		resp.Edges = append(resp.Edges, TreeEdge{U: int32(e.U), V: int32(e.V), W: e.W})
	}
	for _, ph := range res.Phases {
		resp.Phases = append(resp.Phases, PhaseInfo{Name: ph.Name, Seconds: ph.Seconds, Sent: ph.Sent})
	}
	writeJSON(w, resp)
}

func parseSolveRequest(r *http.Request) (SolveRequest, error) {
	var req SolveRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad JSON body: %w", err)
		}
	case http.MethodGet:
		if q := r.URL.Query().Get("seeds"); q != "" {
			for _, part := range strings.Split(q, ",") {
				id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
				if err != nil {
					return req, fmt.Errorf("bad seed %q", part)
				}
				req.Seeds = append(req.Seeds, int32(id))
			}
		}
		if q := r.URL.Query().Get("k"); q != "" {
			k, err := strconv.Atoi(q)
			if err != nil {
				return req, fmt.Errorf("bad k %q", q)
			}
			req.K = k
		}
		req.Strategy = r.URL.Query().Get("strategy")
	default:
		return req, fmt.Errorf("GET or POST only")
	}
	if len(req.Seeds) == 0 && req.K <= 0 {
		return req, fmt.Errorf("need seeds or k")
	}
	if len(req.Seeds) > 0 && req.K > 0 {
		return req, fmt.Errorf("use either seeds or k, not both")
	}
	return req, nil
}

func (s *Service) resolveSeeds(req SolveRequest) ([]graph.VID, error) {
	if len(req.Seeds) > 0 {
		out := make([]graph.VID, len(req.Seeds))
		for i, id := range req.Seeds {
			out[i] = graph.VID(id)
		}
		return out, nil
	}
	strat := seeds.BFSLevel
	switch strings.ToLower(req.Strategy) {
	case "", "bfs-level":
	case "uniform":
		strat = seeds.UniformRandom
	case "eccentric":
		strat = seeds.Eccentric
	case "proximate":
		strat = seeds.Proximate
	default:
		return nil, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
	return seeds.Select(s.g, req.K, strat, req.RNGSeed)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
