// Package steinersvc implements the HTTP query service behind
// cmd/steinersvc: the paper's §I interactive-exploration framework. A
// loaded graph is shared read-only across queries; each request checks a
// solver Engine out of a bounded pool, runs the query on pooled per-query
// state, and streams the resulting tree back as JSON. With a pool of N
// engines, N queries run concurrently on one resident graph; further
// requests queue for the next free engine, keeping memory bounded and
// per-query latency predictable.
//
// On top of the pool sit the multi-tenant serving layers:
//
//   - an LRU solution cache keyed by the canonicalized terminal set, with
//     single-flight coalescing so N concurrent identical queries cost one
//     engine solve (resultCache);
//   - POST /solve/batch, which answers a slice of queries with one engine
//     checkout via Engine.SolveBatch;
//   - POST /solve/async + GET /jobs/{id}, a bounded job queue with explicit
//     429 backpressure so long solves never pin HTTP connections (jobStore);
//   - Shutdown, which drains the job queue and the engine pool so in-flight
//     solves finish cleanly before the engines' rank goroutines are
//     released.
package steinersvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dsteiner/internal/core"
	"dsteiner/internal/faultpoint"
	"dsteiner/internal/graph"
	rt "dsteiner/internal/runtime"
	"dsteiner/internal/seeds"
	"dsteiner/internal/transport"
)

// maxBatchQueries bounds one POST /solve/batch request, so a single request
// body cannot monopolize an engine indefinitely.
const maxBatchQueries = 1024

// Config sizes the service's serving layers.
type Config struct {
	// Engines is the solver pool size (minimum 1): the maximum number of
	// concurrently executing solves. Each engine pins opts.Ranks goroutines
	// and O(|V|) solver state for its lifetime.
	Engines int
	// CacheEntries bounds the LRU solution cache; 0 disables caching and
	// single-flight coalescing.
	CacheEntries int
	// JobQueue bounds the async job queue; 0 disables the /solve/async and
	// /jobs/{id} endpoints.
	JobQueue int
}

// Service is an http.Handler answering Steiner-tree queries on one graph.
type Service struct {
	g    *graph.Graph
	opts core.Options
	mux  *http.ServeMux

	// shard describes the engines' sharded substrate (identical across the
	// pool; captured from the first engine at construction).
	shard core.ShardStats

	// mstMode is the pool's resolved phase 3–5 merge strategy ("fragment"
	// or "replicated"; identical across siblings, captured like shard).
	mstMode string

	// frontierMode is the pool's bucket-drain mode ("serial" or "parallel"
	// on loopback engines; a TCP pool can report "auto", which each worker
	// resolves against its own GOMAXPROCS). Captured like mstMode.
	frontierMode string

	// first is the pool's first engine — on the TCP backend, the
	// coordinator whose fault accounting /stats mirrors. Engines cycle
	// through the pool channel, so this standing reference is how stats
	// reach a checked-out engine; FaultStats is safe to read concurrently.
	first *core.Engine

	// engines is the bounded pool: a query blocks here until an engine is
	// free, so at most cap(engines) solves are in flight at once.
	engines chan *core.Engine

	cache *resultCache // nil when disabled
	jobs  *jobStore    // nil when disabled

	workerWG sync.WaitGroup
	shutdown struct {
		once sync.Once
		err  error
	}

	stats serviceStats
}

// serviceStats aggregates pool utilization and per-query phase timings for
// the /stats endpoint.
type serviceStats struct {
	mu            sync.Mutex
	inFlight      int
	maxInFlight   int
	queries       int64
	errors        int64
	batchRequests int64
	batchQueries  int64
	solveSeconds  float64
	phaseSeconds  map[string]float64
	phaseCalls    map[string]int64
	suppressed    int64
	coalesced     int64
	batched       int64
	net           rt.TransportStats

	// Fragment-merge MST accounting: queries served by the fragment path,
	// their merge rounds, and the phase 3–4 merge payload (both merge
	// modes report crossTableBytes on the TCP backend, so the two are
	// comparable from /stats alone).
	mstFragmentQueries int64
	mstFragmentRounds  int64
	mstCrossTableBytes int64
	mstFragmentMsgs    int64

	// Parallel-frontier accounting: the largest resolved per-rank worker
	// count seen, buckets drained on the pools, messages relaxed there, the
	// largest per-worker chunk, lex-min merge conflicts, and the pools'
	// busy/wall nanoseconds (for the busy-fraction gauge).
	frontierWorkers   int
	frontierDrains    int64
	frontierMsgs      int64
	frontierMaxChunk  int64
	frontierConflicts int64
	frontierBusyNs    int64
	frontierWallNs    int64

	// retriedSolves counts queries this service re-ran after a session
	// fault (the coordinator's internal requeues are counted separately,
	// by the hub).
	retriedSolves int64
}

// New builds a Service over g with per-query solver options. See Config
// for the pool, cache and job-queue sizing. A BackendTCP pool is limited
// to one engine: the engine owns the whole rankd worker fleet, and its
// internal serialization is the fleet's natural concurrency limit.
func New(g *graph.Graph, opts core.Options, cfg Config) (*Service, error) {
	if cfg.Engines < 1 {
		cfg.Engines = 1
	}
	if opts.Backend == core.BackendTCP && cfg.Engines > 1 {
		return nil, fmt.Errorf("steinersvc: -backend tcp supports one engine (a worker fleet), got %d", cfg.Engines)
	}
	s := &Service{
		g:       g,
		opts:    opts,
		mux:     http.NewServeMux(),
		engines: make(chan *core.Engine, cfg.Engines),
		cache:   newResultCache(cfg.CacheEntries),
	}
	s.stats.phaseSeconds = make(map[string]float64, len(core.PhaseNames))
	s.stats.phaseCalls = make(map[string]int64, len(core.PhaseNames))
	// The first engine cuts the shard substrate; the rest are siblings
	// sharing it, so the pool holds one copy of the sharded graph, not
	// cfg.Engines copies.
	var first *core.Engine
	for i := 0; i < cfg.Engines; i++ {
		var e *core.Engine
		var err error
		if first == nil {
			e, err = core.NewEngine(g, opts)
		} else {
			e, err = first.NewSibling()
		}
		if err != nil {
			// Release the engines already built; workers have not started.
			for {
				select {
				case built := <-s.engines:
					built.Close()
				default:
					return nil, fmt.Errorf("steinersvc: engine %d: %w", i, err)
				}
			}
		}
		if first == nil {
			first = e
			s.first = e
			s.shard = e.ShardStats()
			s.mstMode = e.MSTMode().String()
			s.frontierMode = e.Frontier().String()
		}
		s.engines <- e
	}
	if cfg.JobQueue > 0 {
		s.jobs = newJobStore(cfg.JobQueue)
		// One worker per engine: more could not solve concurrently anyway,
		// and fewer would leave engines idle while jobs queue.
		for i := 0; i < cfg.Engines; i++ {
			s.workerWG.Add(1)
			go s.jobWorker()
		}
		s.mux.HandleFunc("/solve/async", s.handleSolveAsync)
		s.mux.HandleFunc("/jobs/{id}", s.handleJob)
	}
	s.mux.HandleFunc("/info", s.handleInfo)
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/solve", s.handleSolveV1)
	s.mux.HandleFunc("/solve/batch", s.handleSolveBatch)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s, nil
}

// MustNew is New that panics on error, for tests and examples with known
// good configurations.
func MustNew(g *graph.Graph, opts core.Options, cfg Config) *Service {
	s, err := New(g, opts, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NumEngines returns the engine pool capacity.
func (s *Service) NumEngines() int { return cap(s.engines) }

// workers returns the rankd worker count of a tcp backend, 0 for inproc.
func (s *Service) workers() int {
	if s.opts.Backend != core.BackendTCP {
		return 0
	}
	if s.opts.Workers <= 0 {
		return 1
	}
	return s.opts.Workers
}

// Shutdown drains the service: async intake stops (submissions fail with
// 503), the workers finish the queued backlog, and every pooled engine is
// reclaimed — waiting for in-flight solves — and closed. Call after
// http.Server.Shutdown so no new requests are arriving; a request still
// blocked in the engine queue at that point fails with 503 when its context
// is cancelled. ctx bounds the drain; on expiry the remaining engines are
// left to die with the process. Subsequent calls return the first outcome.
func (s *Service) Shutdown(ctx context.Context) error {
	s.shutdown.once.Do(func() { s.shutdown.err = s.drain(ctx) })
	return s.shutdown.err
}

func (s *Service) drain(ctx context.Context) error {
	if s.jobs != nil {
		s.jobs.close()
		workersDone := make(chan struct{})
		go func() {
			s.workerWG.Wait()
			close(workersDone)
		}()
		select {
		case <-workersDone:
		case <-ctx.Done():
			return fmt.Errorf("steinersvc: shutdown: job drain: %w", ctx.Err())
		}
	}
	for i := 0; i < cap(s.engines); i++ {
		select {
		case e := <-s.engines:
			e.Close()
		case <-ctx.Done():
			return fmt.Errorf("steinersvc: shutdown: engine drain: %w", ctx.Err())
		}
	}
	return nil
}

// Close is Shutdown without a deadline, for tests and defer-style cleanup.
func (s *Service) Close() { _ = s.Shutdown(context.Background()) }

// ServeHTTP dispatches to the API endpoints.
func (s *Service) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// InfoResponse describes the loaded graph and the per-engine shard
// substrate it is served from.
type InfoResponse struct {
	Vertices  int     `json:"vertices"`
	Arcs      int64   `json:"arcs"`
	MaxDegree int     `json:"maxDegree"`
	AvgDegree float64 `json:"avgDegree"`
	MinWeight uint32  `json:"minWeight"`
	MaxWeight uint32  `json:"maxWeight"`
	Engines   int     `json:"engines"`
	Ranks     int     `json:"ranks"`
	// Backend names the rank backend (inproc | tcp); Workers counts the
	// rankd processes of a tcp backend (0 for inproc).
	Backend string `json:"backend"`
	Workers int    `json:"workers,omitempty"`
	// Partition is the vertex-to-rank mapping kind (block/hash/arcblock).
	Partition string `json:"partition"`
	// DelegateThreshold is the high-degree delegate cutoff (0 = off);
	// Delegates counts the vertices striped across ranks.
	DelegateThreshold int `json:"delegateThreshold"`
	Delegates         int `json:"delegates"`
	// ShardBytes is the total rank-local shard memory — one shard set
	// shared by every engine in the pool.
	ShardBytes int64 `json:"shardBytes"`
	// StateSlabBytes is the total rank-local control-state slab memory of
	// ONE engine; unlike shards, every engine in the pool owns its own
	// slab set, so the pool's total is engines × this value.
	StateSlabBytes int64 `json:"stateSlabBytes"`
}

// SolveRequest is the /solve and /v1/solve request body. Mode selects the
// query kind (default "tree"); the terminal fields it uses are:
//
//   - tree: exactly one of Seeds or K (Strategy defaults to BFS-level when
//     K is used);
//   - forest: Groups, one slice of terminals per group;
//   - prize: Seeds plus one Penalty per seed, parallel by index.
//
// Quality is reserved for future approximation tiers; only "" and "fast"
// (the current solver) are accepted.
type SolveRequest struct {
	Seeds    []int32 `json:"seeds,omitempty"`
	K        int     `json:"k,omitempty"`
	Strategy string  `json:"strategy,omitempty"`
	RNGSeed  int64   `json:"rngSeed,omitempty"`

	Mode      string    `json:"mode,omitempty"`
	Groups    [][]int32 `json:"groups,omitempty"`
	Penalties []int64   `json:"penalties,omitempty"`
	Quality   string    `json:"quality,omitempty"`
}

// TreeEdge is one Steiner tree edge.
type TreeEdge struct {
	U int32  `json:"u"`
	V int32  `json:"v"`
	W uint32 `json:"w"`
}

// PhaseInfo reports one solver phase.
type PhaseInfo struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Sent    int64   `json:"sent"`
}

// SolveResponse is the /solve and /v1/solve reply. Cached reports whether
// the answer came from the solution cache (including coalescing onto
// another request's in-flight solve) rather than a dedicated engine solve.
//
// The mode block is present only on non-tree queries, so tree responses —
// including every legacy endpoint's — are byte-identical to the pre-mode
// API. Forest replies carry the canonical Groups and one GroupEdges slice
// per group (partitioning Edges); prize replies carry the Skipped
// terminals, the PaidPenalty total, and Objective = total + paidPenalty.
type SolveResponse struct {
	Seeds           []int32     `json:"seeds"`
	Edges           []TreeEdge  `json:"edges"`
	Total           int64       `json:"total"`
	SteinerVertices int         `json:"steinerVertices"`
	Phases          []PhaseInfo `json:"phases"`
	Cached          bool        `json:"cached,omitempty"`

	Mode        string       `json:"mode,omitempty"`
	Groups      [][]int32    `json:"groups,omitempty"`
	GroupEdges  [][]TreeEdge `json:"groupEdges,omitempty"`
	Skipped     []int32      `json:"skipped,omitempty"`
	PaidPenalty int64        `json:"paidPenalty,omitempty"`
	Objective   *int64       `json:"objective,omitempty"`
}

// ErrorResponse is the structured error body every endpoint returns on
// failure: a stable machine-readable code plus a human-readable message.
type ErrorResponse struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error codes. Each maps to exactly one HTTP status (see writeError's
// callers): invalid_argument 400, not_found 404, method_not_allowed 405,
// unsolvable 422, queue_full 429, unavailable 503.
const (
	CodeInvalidArgument  = "invalid_argument"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeUnsolvable       = "unsolvable"
	CodeQueueFull        = "queue_full"
	CodeUnavailable      = "unavailable"
)

// writeError replies with the structured {code, message} error body.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSONStatus(w, status, ErrorResponse{Code: code, Message: msg})
}

// solveErrCode maps a solve-path HTTP status (solveErrStatus) to its error
// code.
func solveErrCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidArgument
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeUnsolvable
	}
}

// BatchRequest is the POST /solve/batch body: a slice of independent
// queries answered with one engine checkout.
type BatchRequest struct {
	Queries []SolveRequest `json:"queries"`
}

// BatchItemResponse is one query's outcome within a BatchResponse: exactly
// one of Result or Error is set.
type BatchItemResponse struct {
	Result *SolveResponse `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`
}

// BatchResponse is the POST /solve/batch reply, item i answering query i.
type BatchResponse struct {
	Results []BatchItemResponse `json:"results"`
}

// JobAccepted is the POST /solve/async reply.
type JobAccepted struct {
	ID       string `json:"id"`
	Location string `json:"location"`
}

// JobResponse is the GET /jobs/{id} reply. State is queued, running, done
// or failed; Result is set once done, Error once failed.
type JobResponse struct {
	ID            string         `json:"id"`
	State         string         `json:"state"`
	QueuedSeconds float64        `json:"queuedSeconds"`
	RunSeconds    float64        `json:"runSeconds,omitempty"`
	Error         string         `json:"error,omitempty"`
	Result        *SolveResponse `json:"result,omitempty"`
}

// PhaseStats aggregates one solver phase across all served queries.
type PhaseStats struct {
	Name         string  `json:"name"`
	Calls        int64   `json:"calls"`
	TotalSeconds float64 `json:"totalSeconds"`
	AvgSeconds   float64 `json:"avgSeconds"`
}

// CacheStats reports the solution cache for /stats. HitRate counts
// coalesced queries as hits: they were answered without a dedicated solve.
type CacheStats struct {
	Capacity  int     `json:"capacity"`
	Size      int     `json:"size"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Coalesced int64   `json:"coalesced"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hitRate"`
}

// ShardStats reports the pool's rank-local substrate for /stats: the
// partition kind, the delegate stripe count, the per-rank graph-slab memory
// (TotalBytes across all ranks, MaxRankBytes for the largest single rank)
// and the per-rank control-state slab memory (StateBytes / MaxRankStateBytes,
// per engine). MaxRankBytes + MaxRankStateBytes approximates the per-process
// footprint a multi-process backend would need for its largest rank. One
// shard set is cut by the pool's first engine and shared by its siblings;
// state slabs are per-engine (pool total = engines × StateBytes).
type ShardStats struct {
	Partition         string `json:"partition"`
	Ranks             int    `json:"ranks"`
	DelegateThreshold int    `json:"delegateThreshold"`
	Delegates         int    `json:"delegates"`
	TotalBytes        int64  `json:"totalBytes"`
	MaxRankBytes      int64  `json:"maxRankBytes"`
	StateBytes        int64  `json:"stateBytes"`
	MaxRankStateBytes int64  `json:"maxRankStateBytes"`
}

// TransportStats reports the rank transport's cumulative traffic for
// /stats, summed over every served query: frames and bytes crossing the
// wire plus time spent in the codec. All zero on the in-process backend —
// the block is what makes the loopback-vs-TCP overhead visible.
type TransportStats struct {
	FramesOut     int64   `json:"framesOut"`
	FramesIn      int64   `json:"framesIn"`
	BytesOut      int64   `json:"bytesOut"`
	BytesIn       int64   `json:"bytesIn"`
	EncodeSeconds float64 `json:"encodeSeconds"`
	DecodeSeconds float64 `json:"decodeSeconds"`
	// CompactionSavedBytes is what the v2 compacted batch frames saved
	// versus the v1 encoding of the same batches (0 on v1 sessions).
	CompactionSavedBytes int64 `json:"compactionSavedBytes"`
	// Flush size histogram: coalesced writer flushes under 4 KiB, between
	// 4 KiB and 256 KiB, and 256 KiB or larger.
	FlushesSmall int64 `json:"flushesSmall"`
	FlushesMid   int64 `json:"flushesMid"`
	FlushesLarge int64 `json:"flushesLarge"`
}

// BroadcastStats is the /stats accounting of delegate relaxation offers:
// every offer the solver generated is either Suppressed (dropped by the
// changed-since filter), Coalesced (absorbed into an already-staged
// superstep-outbox entry for the same delegate), or Sent as a real
// broadcast. Batched counts the offers that went through the outbox before
// being sent; with batching on (always, currently) Sent == Batched — the
// fields are kept separate so an eager send path remains representable.
type BroadcastStats struct {
	Suppressed int64 `json:"suppressed"`
	Coalesced  int64 `json:"coalesced"`
	Batched    int64 `json:"batched"`
	Sent       int64 `json:"sent"`
}

// MSTStats is the /stats accounting of the phase 3–5 merge: how many
// queries ran the rank-parallel fragment merge, their total Borůvka
// rounds and exchanged records, and the merge payload bytes moved through
// collectives (replicated queries contribute to crossTableBytes too, so a
// fragment fleet and a replicated fleet are directly comparable; loopback
// engines always report zero bytes — records travel as shared values).
type MSTStats struct {
	Mode             string `json:"mode"`
	FragmentQueries  int64  `json:"fragmentQueries"`
	FragmentRounds   int64  `json:"fragmentRounds"`
	FragmentMessages int64  `json:"fragmentMessages"`
	CrossTableBytes  int64  `json:"crossTableBytes"`
}

// FrontierStats is the /stats accounting of the parallel bucket frontier:
// the drain mode, the largest resolved per-rank worker count, buckets
// drained on the worker pools (0 = every rank drained serially), messages
// relaxed there, the largest per-worker chunk, commutative lex-min merge
// conflicts, and the pools' aggregate busy fraction
// (busyNs / (wallNs × workers); 0 when nothing drained in parallel).
type FrontierStats struct {
	Mode           string  `json:"mode"`
	Workers        int     `json:"workers"`
	BucketsDrained int64   `json:"bucketsDrained"`
	Messages       int64   `json:"messages"`
	MaxChunk       int64   `json:"maxChunk"`
	Conflicts      int64   `json:"conflicts"`
	BusyFraction   float64 `json:"busyFraction"`
}

// FaultStats is the /stats fault-tolerance block. Injected counts faults
// this process's chaos instrumentation fired (faultpoint crashes plus
// chaos-transport connection faults — a process-local count: faults
// injected inside external rankd workers show up here as Detected, not
// Injected). Detected/Rejoins/Heals mirror the TCP coordinator's session
// accounting; RetriedSolves counts queries re-run against a healed fleet,
// whether requeued inside the coordinator or retried by this service.
// LastError is the most recent session-poisoning reason ("" if none) —
// it survives even with recovery off, so a dead fleet is diagnosable from
// /stats alone. All zero on the in-process backend.
type FaultStats struct {
	Injected      int64  `json:"injected"`
	Detected      int64  `json:"detected"`
	Rejoins       int64  `json:"rejoins"`
	Heals         int64  `json:"heals"`
	RetriedSolves int64  `json:"retriedSolves"`
	LastError     string `json:"lastError"`
}

// JobStats reports the async job queue for /stats. Completed counts
// successful jobs only; Completed + Failed is everything that finished.
type JobStats struct {
	QueueCapacity int   `json:"queueCapacity"`
	QueueDepth    int   `json:"queueDepth"`
	Running       int   `json:"running"`
	Completed     int64 `json:"completed"`
	Failed        int64 `json:"failed"`
	Rejected      int64 `json:"rejected"`
}

// StatsResponse is the /stats reply: engine-pool utilization, cumulative
// per-phase timings, and the cache/job-queue counters when those layers are
// enabled. Queries counts engine solves; cache hits answer requests without
// one.
type StatsResponse struct {
	Engines         int     `json:"engines"`
	EnginesIdle     int     `json:"enginesIdle"`
	InFlight        int     `json:"inFlight"`
	MaxInFlight     int     `json:"maxInFlight"`
	Queries         int64   `json:"queries"`
	Errors          int64   `json:"errors"`
	BatchRequests   int64   `json:"batchRequests"`
	BatchQueries    int64   `json:"batchQueries"`
	AvgSolveSeconds float64 `json:"avgSolveSeconds"`
	// Backend names the rank backend serving the pool (inproc | tcp).
	Backend string `json:"backend"`
	// Broadcasts partitions every delegate offer generated across all
	// served queries: suppressed, coalesced, batched, sent.
	Broadcasts BroadcastStats `json:"broadcasts"`
	// MST reports the phase 3–5 merge strategy and its traffic.
	MST MSTStats `json:"mst"`
	// Frontier reports the bucket drain mode and the parallel-frontier
	// work counters.
	Frontier  FrontierStats  `json:"frontier"`
	Transport TransportStats `json:"transport"`
	// Faults is the fault-tolerance block: injected chaos faults, detected
	// session faults, worker rejoins, session heals and retried solves.
	Faults FaultStats   `json:"faults"`
	Phases []PhaseStats `json:"phases"`
	Shard  ShardStats   `json:"shard"`
	Cache  *CacheStats  `json:"cache,omitempty"`
	Jobs   *JobStats    `json:"jobs,omitempty"`
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	minW, maxW := s.g.WeightRange()
	writeJSON(w, InfoResponse{
		Vertices:          s.g.NumVertices(),
		Arcs:              s.g.NumArcs(),
		MaxDegree:         s.g.MaxDegree(),
		AvgDegree:         s.g.AvgDegree(),
		MinWeight:         minW,
		MaxWeight:         maxW,
		Engines:           s.NumEngines(),
		Ranks:             s.shard.Ranks,
		Backend:           s.opts.Backend.String(),
		Workers:           s.workers(),
		Partition:         s.shard.Partition,
		DelegateThreshold: s.shard.DelegateThreshold,
		Delegates:         s.shard.Delegates,
		ShardBytes:        s.shard.ShardBytes,
		StateSlabBytes:    s.shard.StateSlabBytes,
	})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	st := &s.stats
	st.mu.Lock()
	resp := StatsResponse{
		Engines:       s.NumEngines(),
		EnginesIdle:   len(s.engines),
		InFlight:      st.inFlight,
		MaxInFlight:   st.maxInFlight,
		Queries:       st.queries,
		Errors:        st.errors,
		BatchRequests: st.batchRequests,
		BatchQueries:  st.batchQueries,
		Backend:       s.opts.Backend.String(),
		Broadcasts: BroadcastStats{
			Suppressed: st.suppressed,
			Coalesced:  st.coalesced,
			Batched:    st.batched,
			Sent:       st.batched,
		},
		MST: MSTStats{
			Mode:             s.mstMode,
			FragmentQueries:  st.mstFragmentQueries,
			FragmentRounds:   st.mstFragmentRounds,
			FragmentMessages: st.mstFragmentMsgs,
			CrossTableBytes:  st.mstCrossTableBytes,
		},
		Frontier: FrontierStats{
			Mode:           s.frontierMode,
			Workers:        st.frontierWorkers,
			BucketsDrained: st.frontierDrains,
			Messages:       st.frontierMsgs,
			MaxChunk:       st.frontierMaxChunk,
			Conflicts:      st.frontierConflicts,
		},
		Transport: TransportStats{
			FramesOut:            st.net.FramesOut,
			FramesIn:             st.net.FramesIn,
			BytesOut:             st.net.BytesOut,
			BytesIn:              st.net.BytesIn,
			EncodeSeconds:        float64(st.net.EncodeNs) / 1e9,
			DecodeSeconds:        float64(st.net.DecodeNs) / 1e9,
			CompactionSavedBytes: st.net.CompactionSavedBytes,
			FlushesSmall:         st.net.FlushesSmall,
			FlushesMid:           st.net.FlushesMid,
			FlushesLarge:         st.net.FlushesLarge,
		},
	}
	if st.frontierWallNs > 0 && st.frontierWorkers > 0 {
		resp.Frontier.BusyFraction = float64(st.frontierBusyNs) /
			(float64(st.frontierWallNs) * float64(st.frontierWorkers))
	}
	retried := st.retriedSolves
	if st.queries > 0 {
		resp.AvgSolveSeconds = st.solveSeconds / float64(st.queries)
	}
	for _, name := range core.PhaseNames {
		calls := st.phaseCalls[name]
		if calls == 0 {
			continue
		}
		total := st.phaseSeconds[name]
		resp.Phases = append(resp.Phases, PhaseStats{
			Name:         name,
			Calls:        calls,
			TotalSeconds: total,
			AvgSeconds:   total / float64(calls),
		})
	}
	st.mu.Unlock()
	resp.Faults = s.faultStats(retried)
	resp.Shard = ShardStats{
		Partition:         s.shard.Partition,
		Ranks:             s.shard.Ranks,
		DelegateThreshold: s.shard.DelegateThreshold,
		Delegates:         s.shard.Delegates,
		TotalBytes:        s.shard.ShardBytes,
		MaxRankBytes:      s.shard.MaxShardBytes,
		StateBytes:        s.shard.StateSlabBytes,
		MaxRankStateBytes: s.shard.MaxStateSlabBytes,
	}
	if s.cache != nil {
		cc := s.cache.counters()
		cs := &CacheStats{
			Capacity:  cc.capacity,
			Size:      cc.size,
			Hits:      cc.hits,
			Misses:    cc.misses,
			Coalesced: cc.coalesced,
			Evictions: cc.evicted,
		}
		if lookups := cc.hits + cc.coalesced + cc.misses; lookups > 0 {
			cs.HitRate = float64(cc.hits+cc.coalesced) / float64(lookups)
		}
		resp.Cache = cs
	}
	if s.jobs != nil {
		jc := s.jobs.counters()
		resp.Jobs = &JobStats{
			QueueCapacity: jc.queueCapacity,
			QueueDepth:    jc.queueDepth,
			Running:       jc.running,
			Completed:     jc.completed,
			Failed:        jc.failed,
			Rejected:      jc.rejected,
		}
	}
	writeJSON(w, resp)
}

// faultStats assembles the /stats faults block: this process's injected
// chaos faults, the coordinator engine's session accounting, and the
// retried-solve total (service retries + coordinator requeues).
func (s *Service) faultStats(retried int64) FaultStats {
	var ef core.FaultStats
	if s.first != nil {
		ef = s.first.FaultStats()
	}
	return FaultStats{
		Injected:      faultpoint.Injected() + transport.InjectedFaults(),
		Detected:      ef.Detected,
		Rejoins:       ef.Rejoins,
		Heals:         ef.Heals,
		RetriedSolves: retried + ef.Requeued,
		LastError:     ef.LastError,
	}
}

// acquire checks an engine out of the pool, blocking until one is free or
// ctx is cancelled.
func (s *Service) acquire(ctx context.Context) (*core.Engine, error) {
	select {
	case e := <-s.engines:
		s.stats.mu.Lock()
		s.stats.inFlight++
		if s.stats.inFlight > s.stats.maxInFlight {
			s.stats.maxInFlight = s.stats.inFlight
		}
		s.stats.mu.Unlock()
		return e, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// recordQuery folds one engine solve's outcome into the aggregate
// statistics. Call before returnEngine: once the engine is back on the
// channel a blocked request resumes and increments inFlight, and a stale
// not-yet-decremented count would let maxInFlight exceed the pool size.
func (s *Service) recordQuery(res *core.Result, elapsed time.Duration, err error) {
	st := &s.stats
	st.mu.Lock()
	st.queries++
	st.solveSeconds += elapsed.Seconds()
	if err != nil {
		st.errors++
	} else {
		for _, ph := range res.Phases {
			st.phaseSeconds[ph.Name] += ph.Seconds
			st.phaseCalls[ph.Name]++
		}
		st.suppressed += res.SuppressedBroadcasts
		st.coalesced += res.CoalescedBroadcasts
		st.batched += res.BatchedBroadcasts
		st.net = st.net.Add(res.Net)
		if res.MSTFragment {
			st.mstFragmentQueries++
			st.mstFragmentRounds += int64(res.MSTRounds)
			st.mstFragmentMsgs += res.FragmentMsgs
		}
		st.mstCrossTableBytes += res.CrossTableBytes
		if res.FrontierWorkers > st.frontierWorkers {
			st.frontierWorkers = res.FrontierWorkers
		}
		st.frontierDrains += res.FrontierBucketsDrained
		st.frontierMsgs += res.FrontierMsgs
		if res.FrontierMaxChunk > st.frontierMaxChunk {
			st.frontierMaxChunk = res.FrontierMaxChunk
		}
		st.frontierConflicts += res.FrontierConflicts
		st.frontierBusyNs += res.FrontierBusyNs
		st.frontierWallNs += res.FrontierWallNs
	}
	st.mu.Unlock()
}

// returnEngine puts an engine back on the pool.
func (s *Service) returnEngine(e *core.Engine) {
	s.stats.mu.Lock()
	s.stats.inFlight--
	s.stats.mu.Unlock()
	s.engines <- e
}

// solveCached is the shared query path for /solve, /v1/solve and async
// jobs: canonical cache key, single-flight coalescing, engine-pool solve on
// a miss. The spec is canonicalized first, so the cache key covers the full
// query — mode, sorted terminal groups, co-sorted penalties — and a forest
// query can never collide with a tree query over the same vertex set. The
// returned Result may be cache-shared: read-only.
func (s *Service) solveCached(ctx context.Context, spec core.QuerySpec) (*core.Result, bool, error) {
	canonical, err := core.CanonicalSpec(s.g.NumVertices(), spec)
	if err != nil {
		// Range and duplicate errors used to surface from the engine solve;
		// keep counting them as failed queries now that they fail up front.
		s.recordQuery(nil, 0, err)
		return nil, false, err
	}
	key := specKey(canonical)
	solve := func() (*core.Result, error) {
		eng, err := s.acquire(ctx)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := eng.SolveSpec(canonical)
		if err != nil && s.opts.Recover && core.IsSessionFault(err) && ctx.Err() == nil {
			// The query was fine; the fleet was not. The coordinator has
			// already requeued once internally, so a fault surfacing here
			// means the heal needed longer (e.g. workers still
			// respawning): give the fleet one more chance before failing
			// a retryable query.
			s.stats.mu.Lock()
			s.stats.retriedSolves++
			s.stats.mu.Unlock()
			res, err = eng.SolveSpec(canonical)
		}
		s.recordQuery(res, time.Since(start), err)
		s.returnEngine(eng)
		return res, err
	}
	for {
		res, hit, err := s.cache.Do(ctx, key, solve)
		// A coalesced follower inherits its leader's error — including the
		// leader's own context cancellation, which says nothing about this
		// request (an async job runs on context.Background and must not be
		// failed by some HTTP client disconnecting). While our context is
		// live, retry; the flight is gone, so we lead the next attempt.
		if hit && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return res, hit, err
	}
}

// solveErrStatus maps a solve-path error to its HTTP status: client mistakes
// (duplicate terminals) are 400, cancellations and shutdown are 503, and
// everything else — unsolvable but well-formed queries like disconnected or
// out-of-range seeds — is 422.
func solveErrStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrDuplicateSeed):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, errJobsClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// handleSolve serves the legacy /solve endpoint: a thin adapter that builds
// a (tree-mode, unless the body says otherwise) QuerySpec and runs the same
// cached solve path as /v1/solve. Successful tree responses are
// byte-identical to the pre-mode API.
func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	req, err := parseSolveRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	s.serveSpec(w, r, req)
}

// handleSolveV1 serves POST /v1/solve, the mode-aware query endpoint:
// {mode, groups|seeds, penalties, quality?} with mode defaulting to "tree".
func (s *Service) handleSolveV1(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Sprintf("bad JSON body: %v", err))
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	s.serveSpec(w, r, req)
}

// serveSpec is the shared tail of /solve and /v1/solve: build the spec,
// run the cached solve, reply.
func (s *Service) serveSpec(w http.ResponseWriter, r *http.Request, req SolveRequest) {
	spec, err := s.buildSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	res, cached, err := s.solveCached(r.Context(), spec)
	if err != nil {
		status := solveErrStatus(err)
		writeError(w, status, solveErrCode(status), err.Error())
		return
	}
	resp := solveResponse(res)
	resp.Cached = cached
	writeJSON(w, resp)
}

func (s *Service) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Sprintf("bad JSON body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "empty batch")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), maxBatchQueries))
		return
	}

	type batchItem struct {
		spec   core.QuerySpec
		key    string
		res    *core.Result
		cached bool
		err    error
	}
	items := make([]batchItem, len(req.Queries))
	for i, q := range req.Queries {
		if err := q.validate(); err != nil {
			items[i].err = err
			continue
		}
		spec, err := s.buildSpec(q)
		if err != nil {
			items[i].err = err
			continue
		}
		canonical, err := core.CanonicalSpec(s.g.NumVertices(), spec)
		if err != nil {
			// Previously an engine-solve failure; keep the stats accounting.
			s.recordQuery(nil, 0, err)
			items[i].err = err
			continue
		}
		items[i].spec = canonical
		items[i].key = specKey(canonical)
	}

	// Serve cache hits, then group the misses by canonical key so repeated
	// queries within one batch solve once, and solve them all with a single
	// engine checkout.
	missIdx := make(map[string][]int)
	var missKeys []string
	var missSpecs []core.QuerySpec
	for i := range items {
		it := &items[i]
		if it.err != nil {
			continue
		}
		if res, ok := s.cache.get(it.key); ok {
			it.res, it.cached = res, true
			continue
		}
		if _, seen := missIdx[it.key]; !seen {
			missKeys = append(missKeys, it.key)
			missSpecs = append(missSpecs, it.spec)
		}
		missIdx[it.key] = append(missIdx[it.key], i)
	}
	if len(missSpecs) > 0 {
		eng, err := s.acquire(r.Context())
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error())
			return
		}
		start := time.Now()
		solved := eng.SolveSpecBatch(r.Context(), missSpecs)
		// The batch shares one wall-clock measurement; attribute an equal
		// share to each query so avgSolveSeconds stays meaningful.
		per := time.Since(start) / time.Duration(len(solved))
		for bi, item := range solved {
			s.recordQuery(item.Result, per, item.Err)
			if item.Err == nil {
				s.cache.put(missKeys[bi], item.Result)
			}
			for _, i := range missIdx[missKeys[bi]] {
				items[i].res, items[i].err = item.Result, item.Err
			}
		}
		s.returnEngine(eng)
	}

	s.stats.mu.Lock()
	s.stats.batchRequests++
	s.stats.batchQueries += int64(len(items))
	s.stats.mu.Unlock()

	resp := BatchResponse{Results: make([]BatchItemResponse, len(items))}
	for i, it := range items {
		if it.err != nil {
			resp.Results[i].Error = it.err.Error()
			continue
		}
		sr := solveResponse(it.res)
		sr.Cached = it.cached
		resp.Results[i].Result = &sr
	}
	writeJSON(w, resp)
}

func (s *Service) handleSolveAsync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
		return
	}
	req, err := parseSolveRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	spec, err := s.buildSpec(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	// Canonicalize now so a bad query fails at submission, not as a failed
	// job discovered on the first poll. solveErrStatus keeps the codes
	// consistent with /solve: duplicates 400, out-of-range 422.
	canonical, err := core.CanonicalSpec(s.g.NumVertices(), spec)
	if err != nil {
		status := solveErrStatus(err)
		writeError(w, status, solveErrCode(status), err.Error())
		return
	}
	id, err := s.jobs.submit(canonical)
	switch {
	case errors.Is(err, ErrJobQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, CodeQueueFull, err.Error())
		return
	case err != nil:
		status := solveErrStatus(err)
		writeError(w, status, solveErrCode(status), err.Error())
		return
	}
	writeJSONStatus(w, http.StatusAccepted, JobAccepted{ID: id, Location: "/jobs/" + id})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
		return
	}
	snap, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job")
		return
	}
	resp := JobResponse{
		ID:            snap.ID,
		State:         string(snap.State),
		QueuedSeconds: snap.Queued.Seconds(),
		RunSeconds:    snap.Running.Seconds(),
		Error:         snap.ErrMsg,
	}
	if snap.Res != nil {
		sr := solveResponse(snap.Res)
		sr.Cached = snap.Cached
		resp.Result = &sr
	}
	writeJSON(w, resp)
}

// jobWorker drains the job queue through the cached solve path until the
// queue is closed by Shutdown.
func (s *Service) jobWorker() {
	defer s.workerWG.Done()
	for j := range s.jobs.queue {
		s.jobs.markRunning(j)
		res, cached, err := s.solveCached(context.Background(), j.spec)
		s.jobs.markFinished(j, res, cached, err)
	}
}

// solveResponse converts a solver Result into the wire form. The mode
// block is emitted only for non-tree results, keeping tree responses
// byte-identical to the pre-mode API.
func solveResponse(res *core.Result) SolveResponse {
	resp := SolveResponse{
		Total:           int64(res.TotalDistance),
		SteinerVertices: res.SteinerVertices,
	}
	for _, sd := range res.Seeds {
		resp.Seeds = append(resp.Seeds, int32(sd))
	}
	for _, e := range res.Tree {
		resp.Edges = append(resp.Edges, TreeEdge{U: int32(e.U), V: int32(e.V), W: e.W})
	}
	for _, ph := range res.Phases {
		resp.Phases = append(resp.Phases, PhaseInfo{Name: ph.Name, Seconds: ph.Seconds, Sent: ph.Sent})
	}
	if res.Mode == core.ModeTree {
		return resp
	}
	resp.Mode = res.Mode.String()
	obj := int64(res.Objective)
	resp.Objective = &obj
	switch res.Mode {
	case core.ModeForest:
		for _, grp := range res.Groups {
			g32 := make([]int32, len(grp))
			for i, v := range grp {
				g32[i] = int32(v)
			}
			resp.Groups = append(resp.Groups, g32)
		}
		for _, sub := range res.GroupTrees {
			edges := make([]TreeEdge, len(sub))
			for i, e := range sub {
				edges[i] = TreeEdge{U: int32(e.U), V: int32(e.V), W: e.W}
			}
			resp.GroupEdges = append(resp.GroupEdges, edges)
		}
	case core.ModePrize:
		for _, v := range res.Skipped {
			resp.Skipped = append(resp.Skipped, int32(v))
		}
		resp.PaidPenalty = int64(res.PaidPenalty)
	}
	return resp
}

// validate checks the request's field rules for its query mode.
func (req SolveRequest) validate() error {
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		return err
	}
	switch req.Quality {
	case "", "fast":
	default:
		return fmt.Errorf("unknown quality %q (only \"fast\" is available)", req.Quality)
	}
	switch mode {
	case core.ModeForest:
		if len(req.Groups) == 0 {
			return fmt.Errorf("forest mode needs groups")
		}
		if len(req.Seeds) > 0 || req.K > 0 || len(req.Penalties) > 0 {
			return fmt.Errorf("forest mode takes groups, not seeds, k or penalties")
		}
	case core.ModePrize:
		if len(req.Seeds) == 0 {
			return fmt.Errorf("prize mode needs explicit seeds")
		}
		if req.K > 0 || len(req.Groups) > 0 {
			return fmt.Errorf("prize mode takes seeds and penalties, not k or groups")
		}
		if len(req.Penalties) != len(req.Seeds) {
			return fmt.Errorf("prize mode needs one penalty per seed (%d penalties for %d seeds)",
				len(req.Penalties), len(req.Seeds))
		}
		for i, p := range req.Penalties {
			if p < 0 {
				return fmt.Errorf("negative penalty %d for seed %d", p, req.Seeds[i])
			}
		}
	default: // tree
		if len(req.Groups) > 0 || len(req.Penalties) > 0 {
			return fmt.Errorf("tree mode takes seeds or k, not groups or penalties")
		}
		if len(req.Seeds) == 0 && req.K <= 0 {
			return fmt.Errorf("need seeds or k")
		}
		if len(req.Seeds) > 0 && req.K > 0 {
			return fmt.Errorf("use either seeds or k, not both")
		}
	}
	return nil
}

// buildSpec turns a validated request into a core.QuerySpec, resolving
// k-based seed selection for tree mode.
func (s *Service) buildSpec(req SolveRequest) (core.QuerySpec, error) {
	mode, err := core.ParseMode(req.Mode)
	if err != nil {
		return core.QuerySpec{}, err
	}
	switch mode {
	case core.ModeForest:
		spec := core.QuerySpec{Mode: core.ModeForest, Groups: make([][]graph.VID, len(req.Groups))}
		for gi, grp := range req.Groups {
			spec.Groups[gi] = make([]graph.VID, len(grp))
			for i, id := range grp {
				spec.Groups[gi][i] = graph.VID(id)
			}
		}
		return spec, nil
	case core.ModePrize:
		spec := core.QuerySpec{
			Mode:      core.ModePrize,
			Seeds:     make([]graph.VID, len(req.Seeds)),
			Penalties: make([]graph.Dist, len(req.Penalties)),
		}
		for i, id := range req.Seeds {
			spec.Seeds[i] = graph.VID(id)
		}
		for i, p := range req.Penalties {
			spec.Penalties[i] = graph.Dist(p)
		}
		return spec, nil
	default:
		seedSet, err := s.resolveSeeds(req)
		if err != nil {
			return core.QuerySpec{}, err
		}
		return core.TreeSpec(seedSet), nil
	}
}

func parseSolveRequest(r *http.Request) (SolveRequest, error) {
	var req SolveRequest
	switch r.Method {
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			return req, fmt.Errorf("bad JSON body: %w", err)
		}
	case http.MethodGet:
		if q := r.URL.Query().Get("seeds"); q != "" {
			for _, part := range strings.Split(q, ",") {
				id, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
				if err != nil {
					return req, fmt.Errorf("bad seed %q", part)
				}
				req.Seeds = append(req.Seeds, int32(id))
			}
		}
		if q := r.URL.Query().Get("k"); q != "" {
			k, err := strconv.Atoi(q)
			if err != nil {
				return req, fmt.Errorf("bad k %q", q)
			}
			req.K = k
		}
		req.Strategy = r.URL.Query().Get("strategy")
	default:
		return req, fmt.Errorf("GET or POST only")
	}
	return req, req.validate()
}

func (s *Service) resolveSeeds(req SolveRequest) ([]graph.VID, error) {
	if len(req.Seeds) > 0 {
		out := make([]graph.VID, len(req.Seeds))
		for i, id := range req.Seeds {
			out[i] = graph.VID(id)
		}
		return out, nil
	}
	if req.K > s.g.NumVertices() {
		return nil, fmt.Errorf("k=%d exceeds graph size %d", req.K, s.g.NumVertices())
	}
	strat := seeds.BFSLevel
	switch strings.ToLower(req.Strategy) {
	case "", "bfs-level":
	case "uniform":
		strat = seeds.UniformRandom
	case "eccentric":
		strat = seeds.Eccentric
	case "proximate":
		strat = seeds.Proximate
	default:
		return nil, fmt.Errorf("unknown strategy %q", req.Strategy)
	}
	return seeds.Select(s.g, req.K, strat, req.RNGSeed)
}

// writeJSON marshals v before touching the ResponseWriter, so an encoding
// failure surfaces as a 500 instead of a silently truncated 200. Errors
// writing the marshaled bytes to a departed client are unrecoverable and
// intentionally dropped.
func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, fmt.Sprintf("encoding response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(buf, '\n'))
}
