package steinersvc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
)

// treeKey canonicalizes a seed set into its tree-mode cache key, the
// pre-mode cacheKey equivalent.
func treeKey(t *testing.T, seedSet []graph.VID) string {
	t.Helper()
	canonical, err := core.CanonicalSpec(100, core.TreeSpec(seedSet))
	if err != nil {
		t.Fatal(err)
	}
	return specKey(canonical)
}

func TestCacheKeyCanonicalization(t *testing.T) {
	base := treeKey(t, []graph.VID{1, 2, 3})
	for _, perm := range [][]graph.VID{{3, 1, 2}, {2, 3, 1}, {3, 2, 1}, {1, 3, 2}} {
		if treeKey(t, perm) != base {
			t.Fatalf("permutation %v maps to a different key", perm)
		}
	}
	for _, other := range [][]graph.VID{{1, 2}, {1, 2, 4}, {1, 2, 3, 4}} {
		if treeKey(t, other) == base {
			t.Fatalf("distinct set %v collides with {1,2,3}", other)
		}
	}
}

// TestSpecKeyModesDistinct is the cache-correctness regression for query
// modes: a forest query and a tree query over the same vertex set must get
// distinct cache entries, as must prize queries differing only in
// penalties.
func TestSpecKeyModesDistinct(t *testing.T) {
	canon := func(spec core.QuerySpec) string {
		c, err := core.CanonicalSpec(100, spec)
		if err != nil {
			t.Fatal(err)
		}
		return specKey(c)
	}
	tree := canon(core.TreeSpec([]graph.VID{1, 2, 3, 4}))
	forest := canon(core.QuerySpec{Mode: core.ModeForest, Groups: [][]graph.VID{{1, 2}, {3, 4}}})
	forestOther := canon(core.QuerySpec{Mode: core.ModeForest, Groups: [][]graph.VID{{1, 3}, {2, 4}}})
	prize := canon(core.QuerySpec{Mode: core.ModePrize, Seeds: []graph.VID{1, 2, 3, 4},
		Penalties: []graph.Dist{5, 6, 7, 8}})
	prizeOther := canon(core.QuerySpec{Mode: core.ModePrize, Seeds: []graph.VID{1, 2, 3, 4},
		Penalties: []graph.Dist{5, 6, 7, 9}})
	keys := map[string]string{"tree": tree, "forest": forest, "forest2": forestOther,
		"prize": prize, "prize2": prizeOther}
	for a, ka := range keys {
		for b, kb := range keys {
			if a != b && ka == kb {
				t.Fatalf("%s and %s queries over the same vertex set share a cache key", a, b)
			}
		}
	}
	// Canonicalization still collapses equivalent specs of one mode.
	if canon(core.QuerySpec{Mode: core.ModeForest, Groups: [][]graph.VID{{4, 3}, {2, 1}}}) != forest {
		t.Fatal("equivalent forest specs map to different keys")
	}
	if canon(core.QuerySpec{Mode: core.ModePrize, Seeds: []graph.VID{4, 3, 2, 1},
		Penalties: []graph.Dist{8, 7, 6, 5}}) != prize {
		t.Fatal("equivalent prize specs map to different keys")
	}
}

func cacheTestResult(total graph.Dist) *core.Result {
	return &core.Result{
		TotalDistance: total,
		Seeds:         []graph.VID{0, 1},
		Tree:          []graph.Edge{{U: 0, V: 1, W: uint32(total)}},
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	for i, key := range []string{"a", "b", "c"} {
		c.put(key, cacheTestResult(graph.Dist(i)))
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	for _, key := range []string{"b", "c"} {
		if _, ok := c.get(key); !ok {
			t.Fatalf("entry %q evicted too early", key)
		}
	}
	// The gets above left "c" most recently used, so "b" is the next
	// victim.
	c.put("d", cacheTestResult(3))
	if _, ok := c.get("b"); ok {
		t.Fatal("least recently used entry survived")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("recently used entry evicted before LRU")
	}
	cc := c.counters()
	if cc.evicted != 2 || cc.size != 2 || cc.capacity != 2 {
		t.Fatalf("counters = %+v", cc)
	}
}

func TestResultCacheStoresClone(t *testing.T) {
	c := newResultCache(4)
	orig := cacheTestResult(7)
	c.put("k", orig)
	orig.Tree[0].W = 99 // caller mutates its copy
	got, ok := c.get("k")
	if !ok {
		t.Fatal("entry missing")
	}
	if got.Tree[0].W != 7 {
		t.Fatal("cache entry aliases the caller's result")
	}
}

// TestResultCacheSingleFlight launches one leader and several followers on
// the same key: the leader's solve must run exactly once, the followers must
// coalesce onto it, and everyone must observe the same result.
func TestResultCacheSingleFlight(t *testing.T) {
	c := newResultCache(4)
	const followers = 8
	var solves atomic.Int64
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	solve := func() (*core.Result, error) {
		solves.Add(1)
		close(leaderIn)
		<-release
		return cacheTestResult(42), nil
	}

	var wg sync.WaitGroup
	results := make([]*core.Result, followers+1)
	hits := make([]bool, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], hits[0], _ = c.Do(context.Background(), "k", solve)
	}()
	<-leaderIn // leader is inside solve; key is in flight
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], hits[i], _ = c.Do(context.Background(), "k", func() (*core.Result, error) {
				t.Error("follower ran its own solve")
				return nil, errors.New("unexpected")
			})
		}(i)
	}
	// Wait until every follower has registered on the flight, then let the
	// leader finish.
	deadline := time.Now().Add(5 * time.Second)
	for c.counters().coalesced < followers {
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", c.counters())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := solves.Load(); n != 1 {
		t.Fatalf("solve ran %d times, want 1", n)
	}
	if hits[0] {
		t.Fatal("leader reported a hit")
	}
	for i := 1; i <= followers; i++ {
		if !hits[i] {
			t.Fatalf("follower %d reported a miss", i)
		}
		if results[i] == nil || results[i].TotalDistance != 42 {
			t.Fatalf("follower %d result = %+v", i, results[i])
		}
	}
	cc := c.counters()
	if cc.misses != 1 || cc.coalesced != followers || cc.size != 1 {
		t.Fatalf("counters = %+v", cc)
	}
}

// TestResultCacheFollowerHonorsOwnContext checks a coalesced follower stops
// waiting when its own context expires instead of staying pinned behind a
// slow leader.
func TestResultCacheFollowerHonorsOwnContext(t *testing.T) {
	c := newResultCache(4)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() (*core.Result, error) {
			close(leaderIn)
			<-release
			return cacheTestResult(1), nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, hit, err := c.Do(ctx, "k", func() (*core.Result, error) {
			t.Error("follower ran its own solve")
			return nil, errors.New("unexpected")
		})
		if !hit {
			t.Error("abandoning follower should still report coalescing")
		}
		followerDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.counters().coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	cancel() // follower must return now, leader still blocked
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower stayed pinned behind the leader")
	}
	close(release) // leader completes and caches as usual
	if res, _, err := c.Do(context.Background(), "k", nil); err != nil || res.TotalDistance != 1 {
		t.Fatalf("post-flight lookup: res=%+v err=%v", res, err)
	}
}

func TestResultCacheErrorsNotCached(t *testing.T) {
	c := newResultCache(4)
	boom := errors.New("boom")
	calls := 0
	fail := func() (*core.Result, error) { calls++; return nil, boom }
	if _, _, err := c.Do(context.Background(), "k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.Do(context.Background(), "k", fail); !errors.Is(err, boom) {
		t.Fatalf("retry err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("solve calls = %d, want 2 (errors must not be cached)", calls)
	}
	if cc := c.counters(); cc.size != 0 {
		t.Fatalf("failed solve was stored: %+v", cc)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	calls := 0
	for i := 0; i < 2; i++ {
		res, hit, err := c.Do(context.Background(), "k", func() (*core.Result, error) {
			calls++
			return cacheTestResult(1), nil
		})
		if err != nil || hit || res == nil {
			t.Fatalf("disabled Do: res=%v hit=%v err=%v", res, hit, err)
		}
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want passthrough", calls)
	}
	if res, ok := c.get("k"); ok || res != nil {
		t.Fatal("disabled get returned an entry")
	}
	c.put("k", cacheTestResult(1)) // must not panic
	if cc := c.counters(); cc != (cacheCounters{}) {
		t.Fatalf("disabled counters = %+v", cc)
	}
}
