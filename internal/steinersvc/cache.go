package steinersvc

import (
	"container/list"
	"context"
	"encoding/binary"
	"sync"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
)

// specKey packs an already-canonical QuerySpec (core.CanonicalSpec) into
// the solution-cache key. The mode leads the key, so queries of different
// modes over the same vertex set can never collide; the remaining fields
// are the canonical form's, which is a bijection with the query itself:
//
//	tree:   0x00 | seeds (sorted, LE uint32 each)
//	forest: 0x01 | per group: uint32 length | members (sorted, LE uint32)
//	prize:  0x02 | seeds (sorted, LE uint32) | penalties (co-sorted, LE uint64)
func specKey(spec core.QuerySpec) string {
	buf := []byte{byte(spec.Mode)}
	putVIDs := func(vs []graph.VID) {
		for _, v := range vs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		}
	}
	if spec.Mode == core.ModeForest {
		for _, grp := range spec.Groups {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(grp)))
			putVIDs(grp)
		}
	} else {
		putVIDs(spec.Seeds)
		for _, p := range spec.Penalties {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(p))
		}
	}
	return string(buf)
}

// resultCache is a bounded LRU of solved queries with single-flight
// coalescing: N concurrent requests for the same canonical terminal set cost
// one engine solve — the followers block on the leader's in-flight solve
// instead of queueing for engines of their own. Stored results are private
// clones (core.Result.Clone) served to every later hit, so they must be
// treated as read-only by all callers.
//
// A nil *resultCache is valid and means caching is disabled: Do degenerates
// to calling solve directly, with no storage and no coalescing.
type resultCache struct {
	capacity int

	mu        sync.Mutex
	ll        *list.List // front = most recently used
	entries   map[string]*list.Element
	flights   map[string]*cacheFlight
	hits      int64
	misses    int64
	coalesced int64
	evictions int64
}

type cacheEntry struct {
	key string
	res *core.Result
}

// cacheFlight is one in-progress solve that concurrent identical queries
// wait on.
type cacheFlight struct {
	done chan struct{}
	res  *core.Result
	err  error
}

// newResultCache returns a cache bounded to capacity entries, or nil
// (disabled) when capacity <= 0.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		flights:  make(map[string]*cacheFlight),
	}
}

// Do returns the cached result for key or runs solve to produce it. When
// several goroutines ask for the same uncached key concurrently, exactly one
// runs solve and the rest wait for its outcome (errors included — a failed
// leader fails its followers, who are free to retry). A follower whose own
// ctx expires stops waiting and returns the ctx error rather than staying
// pinned behind a slow leader. hit reports whether the result came from the
// cache or a coalesced flight rather than this caller's own solve.
func (c *resultCache) Do(ctx context.Context, key string, solve func() (*core.Result, error)) (res *core.Result, hit bool, err error) {
	if c == nil {
		res, err = solve()
		return res, false, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		res = el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &cacheFlight{done: make(chan struct{})}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	res, err = solve()

	c.mu.Lock()
	delete(c.flights, key)
	if err == nil {
		f.res = c.putLocked(key, res)
	}
	f.err = err
	c.mu.Unlock()
	close(f.done)
	return res, false, err
}

// get returns the cached result for key without solving, counting a hit or
// miss. The batch path uses get/put directly: its misses are solved together
// in one Engine.SolveBatch call, which single-flight's one-key-one-solve
// shape cannot express.
func (c *resultCache) get(key string) (*core.Result, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).res, true
}

// put stores a clone of res under key, evicting the least recently used
// entry beyond capacity.
func (c *resultCache) put(key string, res *core.Result) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, res)
}

// putLocked inserts (or refreshes) key with a private clone of res and
// returns the stored clone. Caller holds c.mu.
func (c *resultCache) putLocked(key string, res *core.Result) *core.Result {
	if el, ok := c.entries[key]; ok {
		// Identical canonical queries are deterministic, so the existing
		// entry is equivalent; keep it and just refresh recency.
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).res
	}
	stored := res.Clone()
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, res: stored})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	return stored
}

// cacheCounters is a consistent snapshot for /stats.
type cacheCounters struct {
	capacity, size                   int
	hits, misses, coalesced, evicted int64
}

func (c *resultCache) counters() cacheCounters {
	if c == nil {
		return cacheCounters{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheCounters{
		capacity:  c.capacity,
		size:      c.ll.Len(),
		hits:      c.hits,
		misses:    c.misses,
		coalesced: c.coalesced,
		evicted:   c.evictions,
	}
}
