package steinersvc

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dsteiner/internal/core"
	"dsteiner/internal/graph"
)

// benchService builds a service over a mid-size random connected graph, the
// same shape as the root package's engine benchmarks.
func benchService(b *testing.B, cfg Config) *Service {
	b.Helper()
	const n = 20000
	rng := rand.New(rand.NewSource(1))
	bld := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		bld.AddEdge(graph.VID(rng.Intn(v)), graph.VID(v), uint32(rng.Intn(64))+1)
	}
	for i := 0; i < 3*n; i++ {
		bld.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)), uint32(rng.Intn(64))+1)
	}
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(g, core.Default(4), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

// benchRepeatQuery drives the same 16-terminal query through the full HTTP
// handler repeatedly and returns nothing: the interesting number is ns/op.
func benchRepeatQuery(b *testing.B, svc *Service) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	seedSet := make([]int32, 0, 16)
	seen := map[int32]bool{}
	for len(seedSet) < cap(seedSet) {
		s := int32(rng.Intn(svc.g.NumVertices()))
		if !seen[s] {
			seen[s] = true
			seedSet = append(seedSet, s)
		}
	}
	body, err := json.Marshal(SolveRequest{Seeds: seedSet})
	if err != nil {
		b.Fatal(err)
	}
	payload := string(body)
	do := func() {
		req := httptest.NewRequest(http.MethodPost, "/solve", strings.NewReader(payload))
		w := httptest.NewRecorder()
		svc.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	do() // warm: the cached configuration measures hits, not the first solve
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do()
	}
}

// BenchmarkServiceCachedRepeat measures the repeated-identical-query path
// with the solution cache on: after the first solve every request is an LRU
// hit. Compare with BenchmarkServiceUncachedRepeat — the quotient is the
// cache-path speedup (the PR's acceptance bar is >= 10x).
func BenchmarkServiceCachedRepeat(b *testing.B) {
	benchRepeatQuery(b, benchService(b, Config{Engines: 1, CacheEntries: 64}))
}

// BenchmarkServiceUncachedRepeat is the same traffic with caching disabled:
// every request pays a full engine solve.
func BenchmarkServiceUncachedRepeat(b *testing.B) {
	benchRepeatQuery(b, benchService(b, Config{Engines: 1}))
}

// BenchmarkServiceBatch16 measures a 16-query batch per iteration (cache
// disabled, so every query solves) against the one-engine-checkout batch
// path.
func BenchmarkServiceBatch16(b *testing.B) {
	svc := benchService(b, Config{Engines: 1})
	rng := rand.New(rand.NewSource(3))
	var req BatchRequest
	for q := 0; q < 16; q++ {
		seen := map[int32]bool{}
		var seedSet []int32
		for len(seedSet) < 8 {
			s := int32(rng.Intn(svc.g.NumVertices()))
			if !seen[s] {
				seen[s] = true
				seedSet = append(seedSet, s)
			}
		}
		req.Queries = append(req.Queries, SolveRequest{Seeds: seedSet})
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	payload := string(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hr := httptest.NewRequest(http.MethodPost, "/solve/batch", strings.NewReader(payload))
		w := httptest.NewRecorder()
		svc.ServeHTTP(w, hr)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

// TestCachedRepeatSpeedup is the deterministic form of the >=10x acceptance
// criterion: it counts engine work instead of timing it. 50 identical
// requests against a cached service must cost exactly one engine solve —
// a 50x reduction in solves — where the uncached service pays all 50.
func TestCachedRepeatSpeedup(t *testing.T) {
	run := func(cfg Config) int64 {
		svc := testServiceCfg(t, cfg)
		srv := httptest.NewServer(svc)
		defer srv.Close()
		for i := 0; i < 50; i++ {
			resp, err := http.Get(srv.URL + "/solve?seeds=0,2,3,7,8")
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("request %d: status %d", i, resp.StatusCode)
			}
		}
		var st StatsResponse
		resp, err := http.Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.Queries
	}
	cached := run(Config{Engines: 1, CacheEntries: 8})
	uncached := run(Config{Engines: 1})
	if cached != 1 {
		t.Fatalf("cached service ran %d engine solves, want 1", cached)
	}
	if uncached != 50 {
		t.Fatalf("uncached service ran %d engine solves, want 50", uncached)
	}
	if uncached/cached < 10 {
		t.Fatalf("speedup %dx < 10x", uncached/cached)
	}
}
