package steinersvc

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// TestV1SolveTreeDefault checks POST /v1/solve with no mode behaves as a
// tree query and keeps the legacy response shape.
func TestV1SolveTreeDefault(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp := postJSON(t, srv.URL+"/v1/solve", SolveRequest{Seeds: []int32{0, 2, 3, 7, 8}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decodeBody[SolveResponse](t, resp)
	if out.Total != 14 || out.Mode != "" || out.Objective != nil {
		t.Fatalf("tree response carries mode fields: %+v", out)
	}
	// GET is not part of the v1 surface.
	getResp, err := http.Get(srv.URL + "/v1/solve?seeds=0,8")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve status = %d", getResp.StatusCode)
	}
}

// TestV1SolveForest checks a forest query end to end through the HTTP
// layer: canonical groups echoed, one edge set per group partitioning the
// full edge list.
func TestV1SolveForest(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp := postJSON(t, srv.URL+"/v1/solve", SolveRequest{
		Mode:   "forest",
		Groups: [][]int32{{8, 7}, {4, 0}}, // unsorted: canonicalization must fix
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decodeBody[SolveResponse](t, resp)
	if out.Mode != "forest" {
		t.Fatalf("mode = %q", out.Mode)
	}
	if !reflect.DeepEqual(out.Groups, [][]int32{{0, 4}, {7, 8}}) {
		t.Fatalf("groups = %v, want canonical [[0 4] [7 8]]", out.Groups)
	}
	if len(out.GroupEdges) != 2 {
		t.Fatalf("groupEdges = %d sets", len(out.GroupEdges))
	}
	var union []TreeEdge
	for _, sub := range out.GroupEdges {
		union = append(union, sub...)
	}
	sort.Slice(union, func(i, j int) bool {
		if union[i].U != union[j].U {
			return union[i].U < union[j].U
		}
		return union[i].V < union[j].V
	})
	if !reflect.DeepEqual(union, out.Edges) {
		t.Fatalf("group edges do not partition the tree: %v vs %v", union, out.Edges)
	}
	if out.Objective == nil || *out.Objective != out.Total {
		t.Fatalf("forest objective = %v, want total %d", out.Objective, out.Total)
	}
}

// TestV1SolvePrize checks both prize outcomes over the Fig. 1 graph: cheap
// penalties make skipping optimal, expensive ones keep every terminal.
func TestV1SolvePrize(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()

	// Skipping 0 costs nothing, connecting 0-8 costs 11: skip.
	resp := postJSON(t, srv.URL+"/v1/solve", SolveRequest{
		Mode: "prize", Seeds: []int32{0, 8}, Penalties: []int64{0, 1000000},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	out := decodeBody[SolveResponse](t, resp)
	if out.Mode != "prize" || !reflect.DeepEqual(out.Skipped, []int32{0}) {
		t.Fatalf("skip case: %+v", out)
	}
	if out.PaidPenalty != 0 || out.Objective == nil || *out.Objective != 0 || out.Total != 0 {
		t.Fatalf("skip case accounting: %+v", out)
	}

	// Both penalties exceed the 0-8 path cost 11: connect everything.
	resp = postJSON(t, srv.URL+"/v1/solve", SolveRequest{
		Mode: "prize", Seeds: []int32{0, 8}, Penalties: []int64{100, 100},
	})
	out = decodeBody[SolveResponse](t, resp)
	if len(out.Skipped) != 0 || out.PaidPenalty != 0 {
		t.Fatalf("keep case skipped %v paid %d", out.Skipped, out.PaidPenalty)
	}
	if out.Total != 11 || out.Objective == nil || *out.Objective != 11 {
		t.Fatalf("keep case total %d objective %v, want 11", out.Total, out.Objective)
	}
}

// TestV1SolveValidation checks the mode-aware request validation and the
// structured error body.
func TestV1SolveValidation(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	for _, tc := range []struct {
		name   string
		req    SolveRequest
		status int
		code   string
		msg    string
	}{
		{"unknown mode", SolveRequest{Mode: "lasso", Seeds: []int32{0}},
			http.StatusBadRequest, CodeInvalidArgument, "unknown query mode"},
		{"forest without groups", SolveRequest{Mode: "forest"},
			http.StatusBadRequest, CodeInvalidArgument, "forest mode needs groups"},
		{"forest with k", SolveRequest{Mode: "forest", Groups: [][]int32{{0}}, K: 3},
			http.StatusBadRequest, CodeInvalidArgument, "not seeds, k or penalties"},
		{"prize without penalties", SolveRequest{Mode: "prize", Seeds: []int32{0, 8}},
			http.StatusBadRequest, CodeInvalidArgument, "one penalty per seed"},
		{"prize negative penalty", SolveRequest{Mode: "prize", Seeds: []int32{0}, Penalties: []int64{-1}},
			http.StatusBadRequest, CodeInvalidArgument, "negative penalty"},
		{"tree with penalties", SolveRequest{Seeds: []int32{0}, Penalties: []int64{1}},
			http.StatusBadRequest, CodeInvalidArgument, "not groups or penalties"},
		{"bad quality", SolveRequest{Seeds: []int32{0, 8}, Quality: "exact"},
			http.StatusBadRequest, CodeInvalidArgument, "unknown quality"},
		{"forest dup across groups", SolveRequest{Mode: "forest", Groups: [][]int32{{0, 4}, {4, 8}}},
			http.StatusBadRequest, CodeInvalidArgument, "more than once"},
	} {
		resp := postJSON(t, srv.URL+"/v1/solve", tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
			resp.Body.Close()
			continue
		}
		errResp := decodeBody[ErrorResponse](t, resp)
		if errResp.Code != tc.code || !strings.Contains(errResp.Message, tc.msg) {
			t.Errorf("%s: error = %+v, want code %q message %q", tc.name, errResp, tc.code, tc.msg)
		}
	}
}

// TestLegacySolveResponseShapePinned pins the legacy /solve contract: a
// tree query's JSON carries exactly the pre-mode field set — no mode,
// groups, objective or other new keys may leak in — and error bodies are
// the structured {code, message} form.
func TestLegacySolveResponseShapePinned(t *testing.T) {
	srv := httptest.NewServer(testService(t))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/solve?seeds=0,8")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(body, &fields); err != nil {
		t.Fatal(err)
	}
	want := []string{"edges", "phases", "seeds", "steinerVertices", "total"}
	var got []string
	for k := range fields {
		got = append(got, k)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy /solve keys = %v, want exactly %v", got, want)
	}

	// The same query through /v1/solve returns the identical body modulo
	// phase timings (both uncached solves of a canonical query).
	v1 := postJSON(t, srv.URL+"/v1/solve", SolveRequest{Seeds: []int32{0, 8}})
	v1out := decodeBody[SolveResponse](t, v1)
	var legacy SolveResponse
	if err := json.Unmarshal(body, &legacy); err != nil {
		t.Fatal(err)
	}
	if v1out.Total != legacy.Total || !reflect.DeepEqual(v1out.Edges, legacy.Edges) ||
		!reflect.DeepEqual(v1out.Seeds, legacy.Seeds) {
		t.Fatalf("/v1/solve tree answer differs from legacy /solve:\n%+v\n%+v", v1out, legacy)
	}

	// Errors are structured now, on legacy endpoints too.
	resp, err = http.Get(srv.URL + "/solve?seeds=0,0")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate-seed status = %d", resp.StatusCode)
	}
	errResp := decodeBody[ErrorResponse](t, resp)
	if errResp.Code != CodeInvalidArgument || !strings.Contains(errResp.Message, "duplicate") {
		t.Fatalf("duplicate-seed error = %+v", errResp)
	}
}

// TestCacheKeysModesEndToEnd is the solution-cache regression through the
// HTTP layer: a forest query and a tree query over the same vertex set get
// distinct cache entries, while a repeated forest query hits.
func TestCacheKeysModesEndToEnd(t *testing.T) {
	svc := testServiceCfg(t, Config{Engines: 1, CacheEntries: 16})
	srv := httptest.NewServer(svc)
	defer srv.Close()
	treeReq := SolveRequest{Seeds: []int32{0, 4, 7, 8}}
	forestReq := SolveRequest{Mode: "forest", Groups: [][]int32{{0, 4}, {7, 8}}}

	warm := decodeBody[SolveResponse](t, postJSON(t, srv.URL+"/v1/solve", treeReq))
	if warm.Cached {
		t.Fatal("first tree query cached")
	}
	forest := decodeBody[SolveResponse](t, postJSON(t, srv.URL+"/v1/solve", forestReq))
	if forest.Cached {
		t.Fatal("forest query over the same vertex set hit the tree query's cache entry")
	}
	if forest.Total >= warm.Total {
		// Forest drops the cross-group connection, so it must be cheaper
		// than the tree spanning all four terminals here.
		t.Fatalf("forest total %d >= tree total %d", forest.Total, warm.Total)
	}
	again := decodeBody[SolveResponse](t, postJSON(t, srv.URL+"/v1/solve", forestReq))
	if !again.Cached {
		t.Fatal("repeated forest query missed the cache")
	}
	if again.Total != forest.Total || !reflect.DeepEqual(again.GroupEdges, forest.GroupEdges) {
		t.Fatalf("cached forest reply differs: %+v vs %+v", again, forest)
	}
	treeAgain := decodeBody[SolveResponse](t, postJSON(t, srv.URL+"/solve", treeReq))
	if !treeAgain.Cached || treeAgain.Total != warm.Total {
		t.Fatalf("legacy /solve missed the v1-warmed tree entry: %+v", treeAgain)
	}
}

// TestBatchAndAsyncAcceptSpecs checks the batch and async endpoints carry
// full query specs: a mixed-mode batch answers each item in its own mode,
// and an async forest job completes with forest output.
func TestBatchAndAsyncAcceptSpecs(t *testing.T) {
	svc := testServiceCfg(t, Config{Engines: 1, CacheEntries: 16, JobQueue: 4})
	srv := httptest.NewServer(svc)
	defer srv.Close()

	batch := decodeBody[BatchResponse](t, postJSON(t, srv.URL+"/solve/batch", BatchRequest{
		Queries: []SolveRequest{
			{Seeds: []int32{0, 8}},
			{Mode: "forest", Groups: [][]int32{{0, 4}, {7, 8}}},
			{Mode: "prize", Seeds: []int32{0, 8}, Penalties: []int64{0, 1000000}},
			{Mode: "prize", Seeds: []int32{0}}, // invalid: no penalties
		},
	}))
	if len(batch.Results) != 4 {
		t.Fatalf("results = %d", len(batch.Results))
	}
	if r := batch.Results[0].Result; r == nil || r.Mode != "" || r.Total != 11 {
		t.Fatalf("tree item: %+v", batch.Results[0])
	}
	if r := batch.Results[1].Result; r == nil || r.Mode != "forest" || len(r.GroupEdges) != 2 {
		t.Fatalf("forest item: %+v", batch.Results[1])
	}
	if r := batch.Results[2].Result; r == nil || r.Mode != "prize" || !reflect.DeepEqual(r.Skipped, []int32{0}) {
		t.Fatalf("prize item: %+v", batch.Results[2])
	}
	if e := batch.Results[3].Error; !strings.Contains(e, "one penalty per seed") {
		t.Fatalf("invalid item error = %q", e)
	}

	accepted := decodeBody[JobAccepted](t, postJSON(t, srv.URL+"/solve/async",
		SolveRequest{Mode: "forest", Groups: [][]int32{{0, 4}, {7, 8}}}))
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/jobs/" + accepted.ID)
		if err != nil {
			t.Fatal(err)
		}
		jr := decodeBody[JobResponse](t, resp)
		if jr.State == "done" {
			if jr.Result == nil || jr.Result.Mode != "forest" || len(jr.Result.GroupEdges) != 2 {
				t.Fatalf("async forest result: %+v", jr.Result)
			}
			break
		}
		if jr.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q (error %q)", jr.State, jr.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
