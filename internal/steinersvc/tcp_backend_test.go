package steinersvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dsteiner/internal/core"
)

// TestTCPBackendService serves the Fig. 1 graph through a steinersvc pool
// whose single engine drives two rankd worker sessions over real
// localhost TCP, and checks (a) /solve answers match the in-process
// service byte for byte, (b) /info and /stats name the backend and
// report nonzero wire traffic, and (c) a pool of more than one engine is
// refused for the tcp backend.
func TestTCPBackendService(t *testing.T) {
	g := testGraph(t)
	opts := core.Default(2)
	opts.Backend = core.BackendTCP
	opts.Workers = 2
	opts.ListenAddr = "127.0.0.1:0"
	var wg sync.WaitGroup
	opts.OnListen = func(addr string) {
		for i := 0; i < opts.Workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := core.RunWorker(addr, core.WorkerConfig{}); err != nil {
					t.Errorf("worker: %v", err)
				}
			}()
		}
	}

	if _, err := New(g, opts, Config{Engines: 2}); err == nil {
		t.Fatal("tcp backend accepted a multi-engine pool")
	}

	svc, err := New(g, opts, Config{Engines: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(wg.Wait)
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc)
	defer srv.Close()

	ref := testService(t) // in-process reference on the same graph
	refSrv := httptest.NewServer(ref)
	defer refSrv.Close()

	getJSON := func(url string, out any) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}

	var info InfoResponse
	getJSON(srv.URL+"/info", &info)
	if info.Backend != "tcp" || info.Workers != 2 {
		t.Fatalf("info backend=%q workers=%d, want tcp/2", info.Backend, info.Workers)
	}

	for _, seeds := range []string{"0,8", "0,3,5", "1,2,7,8"} {
		var got, want SolveResponse
		getJSON(srv.URL+"/solve?seeds="+seeds, &got)
		getJSON(refSrv.URL+"/solve?seeds="+seeds, &want)
		if got.Total != want.Total || got.SteinerVertices != want.SteinerVertices ||
			len(got.Edges) != len(want.Edges) {
			t.Fatalf("seeds %s: tcp %+v != inproc %+v", seeds, got, want)
		}
		for i := range got.Edges {
			if got.Edges[i] != want.Edges[i] {
				t.Fatalf("seeds %s: edge %d differs: %+v != %+v", seeds, i, got.Edges[i], want.Edges[i])
			}
		}
	}

	var st StatsResponse
	getJSON(srv.URL+"/stats", &st)
	if st.Backend != "tcp" {
		t.Fatalf("stats backend = %q", st.Backend)
	}
	if st.Transport.BytesOut == 0 || st.Transport.FramesOut == 0 {
		t.Fatalf("tcp service reports no wire traffic: %+v", st.Transport)
	}
	var refSt StatsResponse
	getJSON(refSrv.URL+"/stats", &refSt)
	if refSt.Backend != "inproc" || refSt.Transport.BytesOut != 0 {
		t.Fatalf("inproc service transport block: %+v", refSt)
	}
}
