package steinersvc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dsteiner/internal/core"
)

// The async job API decouples long solves from HTTP connections: POST
// /solve/async enqueues the query on a bounded queue and returns a job id
// immediately; worker goroutines drain the queue through the same cached
// solve path as /solve, and GET /jobs/{id} polls the outcome. A full queue
// rejects the submission outright (HTTP 429) — explicit backpressure instead
// of unbounded buffering or pinned connections.

// ErrJobQueueFull is returned by submit when the bounded job queue is at
// capacity; the service maps it to HTTP 429.
var ErrJobQueueFull = errors.New("steinersvc: job queue full")

// errJobsClosed is returned by submit once shutdown has begun.
var errJobsClosed = errors.New("steinersvc: service shutting down")

type jobState string

const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// job is one async query. Fields past the identity block are guarded by the
// owning jobStore's mutex.
type job struct {
	id   string
	spec core.QuerySpec

	state     jobState
	res       *core.Result
	errMsg    string
	cached    bool
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// jobSnapshot is an immutable copy of a job's observable state for the HTTP
// layer.
type jobSnapshot struct {
	ID      string
	State   jobState
	Res     *core.Result
	ErrMsg  string
	Cached  bool
	Queued  time.Duration // submit → start (or now while queued)
	Running time.Duration // start → finish (or now while running)
}

// jobStore owns the bounded queue and the finished-job retention window.
type jobStore struct {
	queue chan *job

	mu        sync.Mutex
	jobs      map[string]*job
	order     []string // submission order, for retention eviction
	retain    int      // max jobs kept in the map
	nextID    int64
	running   int
	completed int64 // jobs that finished successfully (excludes failed)
	failed    int64
	rejected  int64
	closed    bool
}

// newJobStore builds a store whose queue holds at most capacity pending
// jobs. Finished jobs are retained for polling until the store exceeds its
// retention window (a small multiple of the queue bound), then evicted
// oldest-first.
func newJobStore(capacity int) *jobStore {
	retain := 8*capacity + 64
	return &jobStore{
		queue:  make(chan *job, capacity),
		jobs:   make(map[string]*job),
		retain: retain,
	}
}

// submit registers a job for the query spec and enqueues it, or reports
// ErrJobQueueFull / errJobsClosed without registering anything.
func (js *jobStore) submit(spec core.QuerySpec) (string, error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.closed {
		return "", errJobsClosed
	}
	js.nextID++
	j := &job{
		id:        fmt.Sprintf("j%06d", js.nextID),
		spec:      spec,
		state:     jobQueued,
		submitted: time.Now(),
	}
	select {
	case js.queue <- j:
	default:
		js.nextID-- // id not consumed
		js.rejected++
		return "", ErrJobQueueFull
	}
	js.jobs[j.id] = j
	js.order = append(js.order, j.id)
	js.evictFinishedLocked()
	return j.id, nil
}

// evictFinishedLocked drops the oldest finished jobs while the store exceeds
// its retention window. Queued and running jobs are never evicted, so a job
// id stays pollable at least until it completes.
func (js *jobStore) evictFinishedLocked() {
	over := len(js.order) - js.retain
	if over <= 0 {
		return
	}
	kept := js.order[:0]
	for _, id := range js.order {
		j := js.jobs[id]
		if over > 0 && (j.state == jobDone || j.state == jobFailed) {
			delete(js.jobs, id)
			over--
			continue
		}
		kept = append(kept, id)
	}
	js.order = kept
}

// get returns a snapshot of the job, or false if unknown (never submitted or
// already evicted).
func (js *jobStore) get(id string) (jobSnapshot, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	if !ok {
		return jobSnapshot{}, false
	}
	snap := jobSnapshot{ID: j.id, State: j.state, Res: j.res, ErrMsg: j.errMsg, Cached: j.cached}
	now := time.Now()
	switch j.state {
	case jobQueued:
		snap.Queued = now.Sub(j.submitted)
	case jobRunning:
		snap.Queued = j.started.Sub(j.submitted)
		snap.Running = now.Sub(j.started)
	default:
		snap.Queued = j.started.Sub(j.submitted)
		snap.Running = j.finished.Sub(j.started)
	}
	return snap, true
}

// markRunning transitions a dequeued job to running.
func (js *jobStore) markRunning(j *job) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j.state = jobRunning
	j.started = time.Now()
	js.running++
}

// markFinished records a job's outcome. res is a cache-owned or solver-owned
// Result treated read-only from here on.
func (js *jobStore) markFinished(j *job, res *core.Result, cached bool, err error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j.finished = time.Now()
	j.cached = cached
	js.running--
	if err != nil {
		j.state = jobFailed
		j.errMsg = err.Error()
		js.failed++
	} else {
		j.state = jobDone
		j.res = res
		js.completed++
	}
}

// close stops intake: later submits fail with errJobsClosed and the queue is
// closed so workers drain the backlog and exit. Safe to call more than once.
func (js *jobStore) close() {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.closed {
		return
	}
	js.closed = true
	close(js.queue)
}

// jobCounters is a consistent snapshot for /stats.
type jobCounters struct {
	queueCapacity, queueDepth, running int
	completed, failed, rejected        int64
}

func (js *jobStore) counters() jobCounters {
	js.mu.Lock()
	defer js.mu.Unlock()
	return jobCounters{
		queueCapacity: cap(js.queue),
		queueDepth:    len(js.queue),
		running:       js.running,
		completed:     js.completed,
		failed:        js.failed,
		rejected:      js.rejected,
	}
}
