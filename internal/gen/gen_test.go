package gen

import (
	"testing"
	"testing/quick"

	"dsteiner/internal/graph"
)

func TestRMATBasic(t *testing.T) {
	c := Config{Name: "t", Kind: KindRMAT, N: 1 << 10, AvgDegree: 8, MaxWeight: 100, Seed: 1, Backbone: true}
	g, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1<<10 {
		t.Fatalf("N = %d", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Backbone guarantees a single component.
	if cc := graph.ConnectedComponents(g); cc.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", cc.NumComponents())
	}
	minW, maxW := g.WeightRange()
	if minW < 1 || maxW > 100 {
		t.Fatalf("weight range (%d,%d) outside [1,100]", minW, maxW)
	}
	// RMAT with default skew should produce hubs well above average.
	if g.MaxDegree() < 3*int(g.AvgDegree()) {
		t.Errorf("max degree %d suspiciously close to avg %.1f for RMAT", g.MaxDegree(), g.AvgDegree())
	}
}

func TestDeterminism(t *testing.T) {
	c := Config{Name: "t", Kind: KindRMAT, N: 512, AvgDegree: 8, MaxWeight: 50, Seed: 42, Backbone: true}
	g1 := c.MustBuild()
	g2 := c.MustBuild()
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
	// Different seed must differ (overwhelmingly likely).
	c.Seed = 43
	g3 := c.MustBuild()
	same := g3.NumEdges() == g1.NumEdges()
	if same {
		e3 := g3.Edges()
		same = true
		for i := range e1 {
			if e1[i] != e3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestErdosRenyi(t *testing.T) {
	c := Config{Name: "er", Kind: KindErdosRenyi, N: 1000, AvgDegree: 10, MaxWeight: 10, Seed: 7}
	g := c.MustBuild()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// ER degree distribution is tight: max degree should be modest.
	if g.MaxDegree() > 10*10 {
		t.Errorf("ER max degree %d too skewed", g.MaxDegree())
	}
	if g.AvgDegree() < 7 || g.AvgDegree() > 10.5 {
		t.Errorf("ER avg degree %.1f far from target 10", g.AvgDegree())
	}
}

func TestWattsStrogatz(t *testing.T) {
	c := Config{Name: "ws", Kind: KindWattsStrogatz, N: 500, K: 4, Beta: 0.1, MaxWeight: 5, Seed: 9}
	g := c.MustBuild()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each vertex contributes K edges; dedup can remove few.
	if g.NumEdges() < int64(float64(500*4)*0.9) {
		t.Errorf("WS edges = %d, want near %d", g.NumEdges(), 500*4)
	}
	if cc := graph.ConnectedComponents(g); cc.NumComponents() != 1 {
		t.Errorf("WS ring should be connected, got %d components", cc.NumComponents())
	}
}

func TestGrid2D(t *testing.T) {
	c := Config{Name: "grid", Kind: KindGrid2D, N: 12, Rows: 3, Cols: 4, MaxWeight: 9, Seed: 3}
	g := c.MustBuild()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3x4 grid: 3*3 horizontal + 2*4 vertical = 17 edges.
	if g.NumEdges() != 17 {
		t.Fatalf("grid edges = %d, want 17", g.NumEdges())
	}
	if cc := graph.ConnectedComponents(g); cc.NumComponents() != 1 {
		t.Errorf("grid disconnected")
	}
	// Corner degree 2, center degree 4.
	if d := g.Degree(0); d != 2 {
		t.Errorf("corner degree = %d, want 2", d)
	}
	if d := g.Degree(graph.VID(1*4 + 1)); d != 4 {
		t.Errorf("center degree = %d, want 4", d)
	}
}

func TestCitation(t *testing.T) {
	c := Config{Name: "cit", Kind: KindCitation, N: 2000, OutDeg: 3, MaxWeight: 100, Seed: 5}
	g := c.MustBuild()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if cc := graph.ConnectedComponents(g); cc.NumComponents() != 1 {
		t.Errorf("citation graph should be connected, got %d components", cc.NumComponents())
	}
	// Preferential attachment yields hubs.
	if g.MaxDegree() < 4*3 {
		t.Errorf("citation max degree %d shows no preferential attachment", g.MaxDegree())
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Name: "tiny", Kind: KindRMAT, N: 1, AvgDegree: 4},
		{Name: "nodeg", Kind: KindRMAT, N: 100},
		{Name: "badgrid", Kind: KindGrid2D, N: 10, Rows: 3, Cols: 4},
		{Name: "badws", Kind: KindWattsStrogatz, N: 10, K: 0},
		{Name: "badbeta", Kind: KindWattsStrogatz, N: 10, K: 2, Beta: 1.5},
		{Name: "badcit", Kind: KindCitation, N: 10},
		{Name: "badkind", Kind: Kind(99), N: 10, AvgDegree: 2},
	}
	for _, c := range cases {
		if _, err := c.Build(); err == nil {
			t.Errorf("config %q accepted, want error", c.Name)
		}
	}
}

func TestUnweightedDefaultsToOne(t *testing.T) {
	c := Config{Name: "u", Kind: KindErdosRenyi, N: 100, AvgDegree: 4, Seed: 11}
	g := c.MustBuild()
	minW, maxW := g.WeightRange()
	if minW != 1 || maxW != 1 {
		t.Fatalf("unweighted graph has range (%d,%d)", minW, maxW)
	}
}

func TestDatasetRegistry(t *testing.T) {
	names := DatasetNames()
	if len(names) != 8 {
		t.Fatalf("registry has %d datasets, want 8", len(names))
	}
	// Size ordering must match Table III: WDC > CLW > UKW > FRS > LVJ >
	// PTN > MCO > CTS.
	want := []string{"WDC12", "CLW12", "UKW07", "FRS", "LVJ", "PTN", "MCO", "CTS"}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("ordering = %v, want %v", names, want)
		}
	}
	// Aliases resolve.
	for _, alias := range []string{"wdc", "ClueWeb12", "LiveJournal", "patent", "MiCo", "citeseer", "ukweb07", "friendster"} {
		if _, err := Dataset(alias); err != nil {
			t.Errorf("alias %q not resolved: %v", alias, err)
		}
	}
	if _, err := Dataset("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	// Weight ranges match the paper exactly.
	wantW := map[string]uint32{
		"WDC12": 500000, "CLW12": 100000, "UKW07": 75000, "FRS": 50000,
		"LVJ": 5000, "PTN": 5000, "MCO": 2000, "CTS": 1000,
	}
	for name, w := range wantW {
		info := MustDataset(name)
		if info.Config.MaxWeight != w {
			t.Errorf("%s MaxWeight = %d, want %d", name, info.Config.MaxWeight, w)
		}
	}
}

func TestSmallDatasetsBuild(t *testing.T) {
	// Build the four smallest registry datasets fully and sanity check.
	for _, name := range []string{"LVJ", "PTN", "MCO", "CTS"} {
		info := MustDataset(name)
		g := info.Config.MustBuild()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices() != info.Config.N {
			t.Errorf("%s: N = %d, want %d", name, g.NumVertices(), info.Config.N)
		}
		lcv := graph.LargestComponentVertices(g)
		if len(lcv) < g.NumVertices()*9/10 {
			t.Errorf("%s: largest component only %d of %d", name, len(lcv), g.NumVertices())
		}
		_, maxW := g.WeightRange()
		if maxW > info.Config.MaxWeight {
			t.Errorf("%s: max weight %d exceeds %d", name, maxW, info.Config.MaxWeight)
		}
	}
}

func TestScaled(t *testing.T) {
	info := MustDataset("LVJ")
	c := info.Scaled(0.125)
	if c.N != info.Config.N/8 {
		t.Fatalf("Scaled N = %d, want %d", c.N, info.Config.N/8)
	}
	g := c.MustBuild()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Degenerate factors fall back to the original config.
	if got := info.Scaled(0); got.N != info.Config.N {
		t.Errorf("Scaled(0) should be identity")
	}
	if got := info.Scaled(1e-9); got.N < 64 {
		t.Errorf("Scaled floor violated: N=%d", got.N)
	}
}

func TestPropertyGeneratorsAlwaysValid(t *testing.T) {
	f := func(seed int64, kindPick uint8) bool {
		kind := Kind(int(kindPick) % 3) // RMAT, ER, WS
		c := Config{Name: "p", Kind: kind, N: 256, AvgDegree: 6, K: 3, Beta: 0.2, MaxWeight: 64, Seed: seed}
		g, err := c.Build()
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindRMAT: "rmat", KindErdosRenyi: "er", KindWattsStrogatz: "ws",
		KindGrid2D: "grid", KindCitation: "citation", Kind(42): "Kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
