// Package gen produces the synthetic graph datasets used by the experiment
// harness. The paper (Table III) evaluates on eight real-world graphs —
// web crawls (WDC12, ClueWeb12, UKWeb07), social networks (Friendster,
// LiveJournal), citation graphs (Patent, CiteSeer) and a co-authorship graph
// (MiCo) — that are terabyte-scale and not redistributable. This package
// provides deterministic scaled-down stand-ins with matching topology class
// (skewed RMAT degree distributions for web/social graphs, preferential
// attachment for citation graphs), the paper's edge-weight ranges and the
// paper's relative size ordering. See DESIGN.md §1 for the substitution
// rationale.
package gen

import (
	"fmt"
	"math/rand"

	"dsteiner/internal/graph"
)

// Kind selects a topology generator.
type Kind int

const (
	// KindRMAT is the recursive-matrix generator of Chakrabarti et al.,
	// producing skewed, scale-free-like degree distributions (web and
	// social network stand-ins).
	KindRMAT Kind = iota
	// KindErdosRenyi is the uniform random graph G(n, m).
	KindErdosRenyi
	// KindWattsStrogatz is the small-world ring-rewire model.
	KindWattsStrogatz
	// KindGrid2D is a rows x cols 4-neighbor mesh (VLSI-style example
	// workloads).
	KindGrid2D
	// KindCitation is incremental preferential attachment: each new
	// vertex links to OutDeg earlier vertices, biased to high degree
	// (citation-graph stand-in; always connected).
	KindCitation
)

func (k Kind) String() string {
	switch k {
	case KindRMAT:
		return "rmat"
	case KindErdosRenyi:
		return "er"
	case KindWattsStrogatz:
		return "ws"
	case KindGrid2D:
		return "grid"
	case KindCitation:
		return "citation"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config fully determines a synthetic graph. Identical Configs always build
// identical graphs.
type Config struct {
	Name string
	Kind Kind

	// N is the vertex count. For KindGrid2D, N must equal Rows*Cols.
	N int
	// AvgDegree is the target average number of arcs per vertex; the
	// generator emits N*AvgDegree/2 undirected edge samples (deduplication
	// can make the realized average slightly lower).
	AvgDegree int

	// RMAT quadrant probabilities (must sum to ~1). Zero values default
	// to the common (0.57, 0.19, 0.19, 0.05) web-graph skew.
	A, B, C, D float64

	// Rows, Cols for KindGrid2D.
	Rows, Cols int
	// K and Beta for KindWattsStrogatz (ring degree and rewire prob).
	K    int
	Beta float64
	// OutDeg for KindCitation.
	OutDeg int

	// MaxWeight draws integer edge weights uniformly from [1, MaxWeight],
	// matching the per-dataset ranges of Table III. Zero means unweighted
	// (all weights 1).
	MaxWeight uint32

	// Seed drives all randomness.
	Seed int64

	// Backbone, when true, adds a random spanning tree over all N
	// vertices so the graph is connected. Grid and citation graphs are
	// connected by construction.
	Backbone bool
}

// Build generates the graph. It panics only on programmer error
// (inconsistent Config); use Validate for checkable errors.
func (c Config) Build() (*graph.Graph, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	var edges []graph.Edge
	switch c.Kind {
	case KindRMAT:
		edges = rmatEdges(c, rng)
	case KindErdosRenyi:
		edges = erEdges(c, rng)
	case KindWattsStrogatz:
		edges = wsEdges(c, rng)
	case KindGrid2D:
		edges = gridEdges(c)
	case KindCitation:
		edges = citationEdges(c, rng)
	}
	if c.Backbone && c.Kind != KindGrid2D && c.Kind != KindCitation {
		edges = append(edges, backboneEdges(c.N, rng)...)
	}
	assignWeights(edges, c.MaxWeight, rng)
	b := graph.NewBuilder(c.N)
	b.AddEdges(edges)
	return b.Build()
}

// MustBuild is Build that panics on error, for registry datasets whose
// Configs are known valid.
func (c Config) MustBuild() *graph.Graph {
	g, err := c.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func (c Config) validate() error {
	if c.N <= 1 {
		return fmt.Errorf("gen: config %q: N=%d too small", c.Name, c.N)
	}
	switch c.Kind {
	case KindGrid2D:
		if c.Rows <= 0 || c.Cols <= 0 || c.Rows*c.Cols != c.N {
			return fmt.Errorf("gen: config %q: grid %dx%d != N=%d", c.Name, c.Rows, c.Cols, c.N)
		}
	case KindWattsStrogatz:
		if c.K <= 0 || c.K >= c.N {
			return fmt.Errorf("gen: config %q: ws K=%d out of range", c.Name, c.K)
		}
		if c.Beta < 0 || c.Beta > 1 {
			return fmt.Errorf("gen: config %q: ws Beta=%f out of range", c.Name, c.Beta)
		}
	case KindCitation:
		if c.OutDeg <= 0 {
			return fmt.Errorf("gen: config %q: citation OutDeg=%d", c.Name, c.OutDeg)
		}
	case KindRMAT, KindErdosRenyi:
		if c.AvgDegree <= 0 {
			return fmt.Errorf("gen: config %q: AvgDegree=%d", c.Name, c.AvgDegree)
		}
	default:
		return fmt.Errorf("gen: config %q: unknown kind %d", c.Name, int(c.Kind))
	}
	return nil
}

// assignWeights draws uniform integer weights in [1, maxW] for every edge.
func assignWeights(edges []graph.Edge, maxW uint32, rng *rand.Rand) {
	if maxW <= 1 {
		for i := range edges {
			edges[i].W = 1
		}
		return
	}
	for i := range edges {
		edges[i].W = uint32(rng.Int63n(int64(maxW))) + 1
	}
}

// backboneEdges returns a uniform random spanning tree (random attachment)
// over n vertices, guaranteeing connectivity.
func backboneEdges(n int, rng *rand.Rand) []graph.Edge {
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, graph.Edge{U: graph.VID(u), V: graph.VID(v), W: 1})
	}
	return edges
}
