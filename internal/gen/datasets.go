package gen

import (
	"fmt"
	"sort"
	"strings"
)

// PaperStats records the characteristics the paper reports for a dataset in
// Table III, for side-by-side comparison with the stand-in.
type PaperStats struct {
	Vertices  string // e.g. "3.5B"
	Arcs      string // 2|E|, e.g. "257B"
	MaxWeight uint32
}

// DatasetInfo couples a stand-in Config with the paper's reported numbers.
type DatasetInfo struct {
	Config Config
	Paper  PaperStats
	// Long is the paper's full dataset name.
	Long string
}

// datasets mirrors Table III at roughly 1/1000–1/50000 scale while keeping
// (a) the relative size ordering WDC > CLW > UKW > FRS > LVJ > PTN > MCO >
// CTS, (b) the skewed degree distribution class of each graph, and (c) the
// paper's per-dataset edge-weight ranges exactly.
var datasets = map[string]DatasetInfo{
	"WDC12": {
		Long:  "Web Data Commons 2012 (web graph stand-in)",
		Paper: PaperStats{Vertices: "3.5B", Arcs: "257B", MaxWeight: 500000},
		Config: Config{
			Name: "WDC12", Kind: KindRMAT, N: 1 << 16, AvgDegree: 36,
			A: 0.57, B: 0.19, C: 0.19, D: 0.05,
			MaxWeight: 500000, Seed: 120, Backbone: true,
		},
	},
	"CLW12": {
		Long:  "ClueWeb 2012 (web graph stand-in)",
		Paper: PaperStats{Vertices: "978M", Arcs: "85B", MaxWeight: 100000},
		Config: Config{
			Name: "CLW12", Kind: KindRMAT, N: 3 << 14, AvgDegree: 32,
			A: 0.57, B: 0.19, C: 0.19, D: 0.05,
			MaxWeight: 100000, Seed: 121, Backbone: true,
		},
	},
	"UKW07": {
		Long:  "UK Web 2007-05 (web graph stand-in)",
		Paper: PaperStats{Vertices: "105M", Arcs: "7.5B", MaxWeight: 75000},
		Config: Config{
			Name: "UKW07", Kind: KindRMAT, N: 1 << 15, AvgDegree: 28,
			A: 0.57, B: 0.19, C: 0.19, D: 0.05,
			MaxWeight: 75000, Seed: 122, Backbone: true,
		},
	},
	"FRS": {
		Long:  "Friendster (social network stand-in)",
		Paper: PaperStats{Vertices: "66M", Arcs: "3.6B", MaxWeight: 50000},
		Config: Config{
			Name: "FRS", Kind: KindRMAT, N: 3 << 13, AvgDegree: 24,
			// Milder skew: Friendster's max degree is only 5.2K.
			A: 0.45, B: 0.22, C: 0.22, D: 0.11,
			MaxWeight: 50000, Seed: 123, Backbone: true,
		},
	},
	"LVJ": {
		Long:  "LiveJournal (social network stand-in)",
		Paper: PaperStats{Vertices: "4.8M", Arcs: "85.7M", MaxWeight: 5000},
		Config: Config{
			Name: "LVJ", Kind: KindRMAT, N: 1 << 13, AvgDegree: 17,
			A: 0.5, B: 0.2, C: 0.2, D: 0.1,
			MaxWeight: 5000, Seed: 124, Backbone: true,
		},
	},
	"PTN": {
		Long:  "Patent (citation graph stand-in)",
		Paper: PaperStats{Vertices: "2.7M", Arcs: "28M", MaxWeight: 5000},
		Config: Config{
			Name: "PTN", Kind: KindCitation, N: 6 << 10, OutDeg: 5,
			MaxWeight: 5000, Seed: 125,
		},
	},
	"MCO": {
		Long:  "MiCo Microsoft co-authorship (stand-in)",
		Paper: PaperStats{Vertices: "100K", Arcs: "2.2M", MaxWeight: 2000},
		Config: Config{
			Name: "MCO", Kind: KindRMAT, N: 1 << 11, AvgDegree: 22,
			A: 0.5, B: 0.2, C: 0.2, D: 0.1,
			MaxWeight: 2000, Seed: 126, Backbone: true,
		},
	},
	"CTS": {
		Long:  "CiteSeer (citation graph stand-in)",
		Paper: PaperStats{Vertices: "3.3K", Arcs: "9.4K", MaxWeight: 1000},
		Config: Config{
			Name: "CTS", Kind: KindCitation, N: 512, OutDeg: 2,
			MaxWeight: 1000, Seed: 127,
		},
	},
}

// aliases maps alternative spellings used in the paper's prose to registry
// keys.
var aliases = map[string]string{
	"WDC": "WDC12", "CLW": "CLW12", "CLUEWEB12": "CLW12",
	"UKW": "UKW07", "UKWEB07": "UKW07",
	"FRIENDSTER": "FRS", "LIVEJOURNAL": "LVJ",
	"PATENT": "PTN", "MICO": "MCO", "CITESEER": "CTS",
}

// Dataset looks up a Table III stand-in by name (case-insensitive; paper
// abbreviations and full names both accepted).
func Dataset(name string) (DatasetInfo, error) {
	key := strings.ToUpper(strings.TrimSpace(name))
	if alias, ok := aliases[key]; ok {
		key = alias
	}
	info, ok := datasets[key]
	if !ok {
		return DatasetInfo{}, fmt.Errorf("gen: unknown dataset %q (have %s)", name, strings.Join(DatasetNames(), ", "))
	}
	return info, nil
}

// MustDataset is Dataset that panics on unknown names.
func MustDataset(name string) DatasetInfo {
	info, err := Dataset(name)
	if err != nil {
		panic(err)
	}
	return info
}

// DatasetNames returns the registry keys sorted from largest to smallest
// stand-in, matching the paper's Table III ordering.
func DatasetNames() []string {
	names := make([]string, 0, len(datasets))
	for name := range datasets {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := datasets[names[i]].Config, datasets[names[j]].Config
		if a.N != b.N {
			return a.N > b.N
		}
		return names[i] < names[j]
	})
	return names
}

// Scaled returns a copy of the Config shrunk by factor f (0 < f <= 1) for
// quick tests: vertex counts scale linearly, degree parameters are
// preserved.
func (d DatasetInfo) Scaled(f float64) Config {
	c := d.Config
	if f <= 0 || f > 1 {
		return c
	}
	n := int(float64(c.N) * f)
	if n < 64 {
		n = 64
	}
	c.N = n
	if c.Kind == KindGrid2D {
		// Not used by registry datasets; keep N consistent anyway.
		c.Rows, c.Cols = n, 1
	}
	return c
}
