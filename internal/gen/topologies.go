package gen

import (
	"math/rand"

	"dsteiner/internal/graph"
)

// rmatEdges samples N*AvgDegree/2 edges by R-MAT recursive quadrant descent.
// Quadrant probabilities are perturbed per level with small noise (as in the
// Graph500 reference generator) to avoid exact self-similarity artifacts.
func rmatEdges(c Config, rng *rand.Rand) []graph.Edge {
	a, b, cc, d := c.A, c.B, c.C, c.D
	if a == 0 && b == 0 && cc == 0 && d == 0 {
		a, b, cc, d = 0.57, 0.19, 0.19, 0.05
	}
	// levels = ceil(log2(N))
	levels := 0
	for (1 << levels) < c.N {
		levels++
	}
	m := c.N * c.AvgDegree / 2
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			// Perturb quadrant probabilities by up to ±10%.
			noise := func(p float64) float64 { return p * (0.9 + 0.2*rng.Float64()) }
			pa, pb, pc, pd := noise(a), noise(b), noise(cc), noise(d)
			sum := pa + pb + pc + pd
			r := rng.Float64() * sum
			u <<= 1
			v <<= 1
			switch {
			case r < pa:
				// top-left: no bits set
			case r < pa+pb:
				v |= 1
			case r < pa+pb+pc:
				u |= 1
			default:
				u |= 1
				v |= 1
			}
		}
		if u >= c.N || v >= c.N || u == v {
			i-- // resample
			continue
		}
		edges = append(edges, graph.Edge{U: graph.VID(u), V: graph.VID(v)})
	}
	return edges
}

// erEdges samples N*AvgDegree/2 uniform random edges (G(n, m) with
// replacement; the builder deduplicates).
func erEdges(c Config, rng *rand.Rand) []graph.Edge {
	m := c.N * c.AvgDegree / 2
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := rng.Intn(c.N)
		v := rng.Intn(c.N)
		if u == v {
			i--
			continue
		}
		edges = append(edges, graph.Edge{U: graph.VID(u), V: graph.VID(v)})
	}
	return edges
}

// wsEdges builds a Watts–Strogatz small-world graph: ring lattice where each
// vertex connects to its K nearest clockwise neighbors, each such edge
// rewired to a random endpoint with probability Beta.
func wsEdges(c Config, rng *rand.Rand) []graph.Edge {
	edges := make([]graph.Edge, 0, c.N*c.K)
	for v := 0; v < c.N; v++ {
		for j := 1; j <= c.K; j++ {
			u := (v + j) % c.N
			if rng.Float64() < c.Beta {
				u = rng.Intn(c.N)
				if u == v {
					u = (v + 1) % c.N
				}
			}
			edges = append(edges, graph.Edge{U: graph.VID(v), V: graph.VID(u)})
		}
	}
	return edges
}

// gridEdges builds a Rows x Cols 4-neighbor mesh; vertex (r, c) has ID
// r*Cols + c.
func gridEdges(c Config) []graph.Edge {
	edges := make([]graph.Edge, 0, 2*c.N)
	id := func(r, col int) graph.VID { return graph.VID(r*c.Cols + col) }
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			if col+1 < c.Cols {
				edges = append(edges, graph.Edge{U: id(r, col), V: id(r, col+1)})
			}
			if r+1 < c.Rows {
				edges = append(edges, graph.Edge{U: id(r, col), V: id(r+1, col)})
			}
		}
	}
	return edges
}

// citationEdges grows the graph one vertex at a time; each new vertex cites
// OutDeg earlier vertices chosen by preferential attachment (picking a
// uniform endpoint of an existing edge; falling back to uniform for the
// first vertices). The result is connected with a heavy-tailed in-degree
// distribution, like the paper's Patent and CiteSeer graphs.
func citationEdges(c Config, rng *rand.Rand) []graph.Edge {
	edges := make([]graph.Edge, 0, c.N*c.OutDeg)
	// endpoints is a flat multiset of edge endpoints for O(1) preferential
	// sampling.
	endpoints := make([]graph.VID, 0, 2*c.N*c.OutDeg)
	for v := 1; v < c.N; v++ {
		cited := map[graph.VID]bool{}
		for j := 0; j < c.OutDeg && j < v; j++ {
			var u graph.VID
			if len(endpoints) > 0 && rng.Float64() < 0.8 {
				u = endpoints[rng.Intn(len(endpoints))]
			} else {
				u = graph.VID(rng.Intn(v))
			}
			if int(u) >= v || cited[u] {
				j--
				// Avoid infinite loops on tiny prefixes.
				if len(cited) >= v {
					break
				}
				continue
			}
			cited[u] = true
			edges = append(edges, graph.Edge{U: u, V: graph.VID(v)})
			endpoints = append(endpoints, u, graph.VID(v))
		}
	}
	return edges
}
